#include "blockdev/fault_device.h"

#include <algorithm>

namespace raefs {

Status FaultBlockDevice::read_block(BlockNo block, std::span<uint8_t> out) {
  bool fail = false;
  size_t flip_bit = 0;
  bool corrupt = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t index = reads_seen_++;
    if (crashed_) {
      ++read_errors_;
      return Errno::kIo;
    }
    if (index == read_error_at_) {
      read_error_at_ = kUnarmed;  // one-shot
      ++read_errors_;
      return Errno::kIo;
    }
    if (config_.read_error_prob > 0 && rng_.chance(config_.read_error_prob)) {
      fail = true;
      ++read_errors_;
    } else if (config_.read_corrupt_prob > 0 &&
               rng_.chance(config_.read_corrupt_prob)) {
      corrupt = true;
      flip_bit = rng_.below(static_cast<uint64_t>(block_size()) * 8);
      ++corruptions_;
    }
    if (fail) return Errno::kIo;
    // Read-your-writes through the volatile cache: the newest pending copy
    // of the block, if any, is what the host must observe.
    if (reorder_ && !pending_.empty()) {
      for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
        if (it->block == block) {
          std::copy(it->data->begin(), it->data->end(), out.begin());
          if (corrupt) {
            out[flip_bit / 8] ^= static_cast<uint8_t>(1u << (flip_bit % 8));
          }
          return Status::Ok();
        }
      }
    }
  }
  RAEFS_TRY_VOID(inner_->read_block(block, out));
  if (corrupt) out[flip_bit / 8] ^= static_cast<uint8_t>(1u << (flip_bit % 8));
  return Status::Ok();
}

Status FaultBlockDevice::write_block(BlockNo block,
                                     std::span<const uint8_t> data) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t index = writes_seen_++;
    if (crashed_ || index >= crash_at_write_) {
      if (!crashed_) writes_at_crash_ = index;
      crashed_ = true;
      ++write_errors_;
      return Errno::kIo;
    }
    if (index == write_error_at_) {
      write_error_at_ = kUnarmed;  // one-shot
      ++write_errors_;
      return Errno::kIo;
    }
    if (config_.write_error_prob > 0 &&
        rng_.chance(config_.write_error_prob)) {
      ++write_errors_;
      return Errno::kIo;
    }
    if (reorder_) {
      pending_.push_back(PendingWrite{
          index, block,
          std::make_shared<const std::vector<uint8_t>>(data.begin(),
                                                       data.end())});
      return Status::Ok();
    }
  }
  return inner_->write_block(block, data);
}

Status FaultBlockDevice::flush() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t index = flushes_seen_++;
    if (crashed_) return Errno::kIo;
    if (index >= crash_at_flush_) {
      // The barrier is where the power died: the epoch stays frozen in the
      // volatile cache for the harness to materialize subsets of.
      writes_at_crash_ = writes_seen_;
      crashed_ = true;
      return Errno::kIo;
    }
    if (reorder_) {
      RAEFS_TRY_VOID(drain_pending_locked_());
    }
  }
  return inner_->flush();
}

Status FaultBlockDevice::drain_pending_locked_() {
  for (const PendingWrite& pw : pending_) {
    RAEFS_TRY_VOID(inner_->write_block(
        pw.block, std::span<const uint8_t>(pw.data->data(), pw.data->size())));
  }
  pending_.clear();
  return Status::Ok();
}

void FaultBlockDevice::arm_crash_after_writes(uint64_t k) {
  std::lock_guard<std::mutex> lk(mu_);
  crash_at_write_ = k;
  crashed_ = false;
}

void FaultBlockDevice::arm_crash_at_flush(uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  crash_at_flush_ = n;
  crashed_ = false;
}

void FaultBlockDevice::arm_write_error_at(uint64_t i) {
  std::lock_guard<std::mutex> lk(mu_);
  write_error_at_ = i;
}

void FaultBlockDevice::arm_read_error_at(uint64_t i) {
  std::lock_guard<std::mutex> lk(mu_);
  read_error_at_ = i;
}

uint64_t FaultBlockDevice::writes_seen() const {
  std::lock_guard<std::mutex> lk(mu_);
  return writes_seen_;
}

uint64_t FaultBlockDevice::reads_seen() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reads_seen_;
}

uint64_t FaultBlockDevice::flushes_seen() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flushes_seen_;
}

bool FaultBlockDevice::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

uint64_t FaultBlockDevice::writes_at_crash() const {
  std::lock_guard<std::mutex> lk(mu_);
  return writes_at_crash_;
}

void FaultBlockDevice::disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  config_.read_error_prob = 0;
  config_.write_error_prob = 0;
  config_.read_corrupt_prob = 0;
  crash_at_write_ = kUnarmed;
  crash_at_flush_ = kUnarmed;
  write_error_at_ = kUnarmed;
  read_error_at_ = kUnarmed;
  crashed_ = false;
  writes_at_crash_ = 0;
  // Power-cycle semantics: the volatile write cache does not survive.
  pending_.clear();
}

Status FaultBlockDevice::set_reorder_buffering(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!on && reorder_ && !pending_.empty()) {
    RAEFS_TRY_VOID(drain_pending_locked_());
  }
  reorder_ = on;
  return Status::Ok();
}

bool FaultBlockDevice::reorder_buffering() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reorder_;
}

std::vector<FaultBlockDevice::PendingWrite> FaultBlockDevice::pending_epoch()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

size_t FaultBlockDevice::pending_writes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

Status FaultBlockDevice::materialize_pending(const std::vector<size_t>& keep) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!reorder_) return Errno::kInval;
  for (size_t pos : keep) {
    if (pos >= pending_.size()) return Errno::kInval;
  }
  std::vector<size_t> order(keep);
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());
  for (size_t pos : order) {
    const PendingWrite& pw = pending_[pos];
    RAEFS_TRY_VOID(inner_->write_block(
        pw.block, std::span<const uint8_t>(pw.data->data(), pw.data->size())));
  }
  pending_.clear();
  return inner_->flush();
}

}  // namespace raefs
