#include "blockdev/fault_device.h"

namespace raefs {

Status FaultBlockDevice::read_block(BlockNo block, std::span<uint8_t> out) {
  bool fail = false;
  size_t flip_bit = 0;
  bool corrupt = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (config_.read_error_prob > 0 && rng_.chance(config_.read_error_prob)) {
      fail = true;
      ++read_errors_;
    } else if (config_.read_corrupt_prob > 0 &&
               rng_.chance(config_.read_corrupt_prob)) {
      corrupt = true;
      flip_bit = rng_.below(static_cast<uint64_t>(block_size()) * 8);
      ++corruptions_;
    }
  }
  if (fail) return Errno::kIo;
  RAEFS_TRY_VOID(inner_->read_block(block, out));
  if (corrupt) out[flip_bit / 8] ^= static_cast<uint8_t>(1u << (flip_bit % 8));
  return Status::Ok();
}

Status FaultBlockDevice::write_block(BlockNo block,
                                     std::span<const uint8_t> data) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (config_.write_error_prob > 0 &&
        rng_.chance(config_.write_error_prob)) {
      ++write_errors_;
      return Errno::kIo;
    }
  }
  return inner_->write_block(block, data);
}

void FaultBlockDevice::disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  config_.read_error_prob = 0;
  config_.write_error_prob = 0;
  config_.read_corrupt_prob = 0;
}

}  // namespace raefs
