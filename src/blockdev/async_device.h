// Asynchronous block layer (the base filesystem's "blk-mq" analogue).
//
// Requests are queued on a submission queue and serviced by worker
// threads; completions run on the worker. The base filesystem's write-back
// path uses this layer (Figure 2, left side: "Block Layer (asynchronous
// IO)"); the shadow never touches it and reads the device synchronously.
//
// Ordering guarantees the pipelined commit engine is built on:
//   * a flush barrier is serviced only after every request submitted
//     before it has completed on the device — so "data + journal payload,
//     flush, commit record, flush" staged as five submissions is a
//     correct write-ahead sequence with no caller-side waiting;
//   * a request's completion callback runs before the request stops
//     counting as in flight, so a barrier can never overtake the
//     completion work (commit bookkeeping, waiter wakeups) of the
//     requests it fences.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "blockdev/block_device.h"

namespace raefs {

class AsyncBlockDevice {
 public:
  using ReadCallback = std::function<void(Status, std::vector<uint8_t>)>;
  using WriteCallback = std::function<void(Status)>;

  /// Start `workers` service threads over `inner`. `inner` must outlive
  /// this object.
  explicit AsyncBlockDevice(BlockDevice* inner, int workers = 2);
  ~AsyncBlockDevice();

  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  /// Queue a block read; `done` runs on a worker thread.
  void submit_read(BlockNo block, ReadCallback done);

  /// Queue a block write (data moved into the request); `done` runs on a
  /// worker thread.
  void submit_write(BlockNo block, std::vector<uint8_t> data,
                    WriteCallback done);

  /// Zero-copy variant: the request shares ownership of the buffer.
  void submit_write(BlockNo block, BlockBufPtr data, WriteCallback done);

  /// Coalesced write of `bufs.size()` contiguous blocks starting at
  /// `first`. One queue round-trip for the whole extent; `done` runs once
  /// with the first failure (or Ok). Buffers are shared, never copied.
  void submit_writev(BlockNo first, std::vector<BlockBufPtr> bufs,
                     WriteCallback done);

  /// Queue a flush barrier: serviced only after all earlier requests.
  void submit_flush(WriteCallback done);

  /// Block until every queued request has completed.
  void drain();

  /// Requests currently queued or in flight.
  size_t pending() const;

  /// Stop accepting requests, drain, and join workers. Idempotent;
  /// also performed by the destructor.
  void shutdown();

 private:
  struct Request {
    enum class Kind { kRead, kWrite, kWritev, kFlush } kind;
    BlockNo block = 0;
    BlockBufPtr data;                // kWrite
    std::vector<BlockBufPtr> bufs;   // kWritev: blocks block..block+n-1
    ReadCallback read_done;
    WriteCallback write_done;
  };

  void worker_loop();
  void enqueue(Request req);

  BlockDevice* inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable drain_cv_;  // wakes drain()
  std::deque<Request> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  bool flush_in_progress_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace raefs
