#include "blockdev/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace raefs {

FileBlockDevice::FileBlockDevice(const std::string& path, uint64_t block_count)
    : blocks_(block_count) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBlockDevice: cannot open " + path);
  }
  if (::ftruncate(fd_, static_cast<off_t>(block_count * kBlockSize)) != 0) {
    ::close(fd_);
    throw std::runtime_error("FileBlockDevice: cannot size " + path);
  }
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::read_block(BlockNo block, std::span<uint8_t> out) {
  if (block >= blocks_ || out.size() != kBlockSize) return Errno::kInval;
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  ssize_t n = ::pread(fd_, out.data(), kBlockSize,
                      static_cast<off_t>(block * kBlockSize));
  if (n != static_cast<ssize_t>(kBlockSize)) return Errno::kIo;
  return Status::Ok();
}

Status FileBlockDevice::write_block(BlockNo block,
                                    std::span<const uint8_t> data) {
  if (block >= blocks_ || data.size() != kBlockSize) return Errno::kInval;
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  ssize_t n = ::pwrite(fd_, data.data(), kBlockSize,
                       static_cast<off_t>(block * kBlockSize));
  if (n != static_cast<ssize_t>(kBlockSize)) return Errno::kIo;
  return Status::Ok();
}

Status FileBlockDevice::flush() {
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  if (::fdatasync(fd_) != 0) return Errno::kIo;
  return Status::Ok();
}

}  // namespace raefs
