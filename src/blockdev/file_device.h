// File-backed block device (pread/pwrite on a host file). Used by the
// examples to persist images across runs; crash simulation is not
// supported here -- use MemBlockDevice for crash experiments.
#pragma once

#include <string>

#include "blockdev/block_device.h"

namespace raefs {

class FileBlockDevice final : public BlockDevice {
 public:
  /// Open (or create) `path` sized to `block_count` blocks. Throws
  /// std::runtime_error if the file cannot be opened or resized.
  FileBlockDevice(const std::string& path, uint64_t block_count);
  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  uint32_t block_size() const override { return kBlockSize; }
  uint64_t block_count() const override { return blocks_; }

  Status read_block(BlockNo block, std::span<uint8_t> out) override;
  Status write_block(BlockNo block, std::span<const uint8_t> data) override;
  Status flush() override;

  const DeviceStats& stats() const override { return stats_; }

 private:
  uint64_t blocks_;
  int fd_ = -1;
  DeviceStats stats_;
};

}  // namespace raefs
