// Device queue-depth probe: the measurement behind `workers = 0` (auto).
//
// The parallel recovery phases (journal replay, shadow replay, fsck, and
// the download phase's bulk install) all scale with the device's ability
// to overlap concurrent IO, not with host core count: on real storage
// recovery is IO-bound, and the worker pools buy wall-clock time only
// while the device can absorb the extra in-flight requests. The right
// worker count is therefore a *device* property. This probe measures it
// directly at mount time: timed batches of sampled reads at increasing
// concurrency, with the effective depth being the highest level that
// still shows real scaling over the level below it.
//
// Devices with no measurable per-IO latency (a bare MemBlockDevice)
// short-circuit to depth 1: there is no IO wait to overlap, and a timed
// probe would only measure scheduler noise. Results are cached per
// device instance so one mount probes at most once; tests reset the
// cache between devices that reuse an address.
#pragma once

#include <cstdint>

#include "blockdev/block_device.h"

namespace raefs {

struct QdepthProbeResult {
  uint32_t effective_depth = 1;  // concurrent IOs the device absorbs
  uint64_t single_read_ns = 0;   // measured single-stream read latency
};

/// Measure the device's effective queue depth with timed concurrent-read
/// batches (real wall-clock time; the device is only read). Deterministic
/// block sampling, bounded cost: a few dozen reads total.
QdepthProbeResult probe_queue_depth(BlockDevice* dev);

/// probe_queue_depth memoized per device instance (one probe per mount,
/// shared by every phase that resolves an auto knob).
QdepthProbeResult cached_queue_depth(BlockDevice* dev);

/// Drop all cached probe results (tests; device addresses get reused).
void clear_queue_depth_cache();

/// Resolve a worker-count knob: a nonzero knob is explicit and returned
/// as-is; 0 means auto -- derive the count from the device's cached
/// probed queue depth, clamped to [1, 8] (the recovery pools' measured
/// scaling range, BENCH_recovery.json).
uint32_t resolve_workers(uint32_t knob, BlockDevice* dev);

}  // namespace raefs
