#include "blockdev/mem_device.h"

#include <cstring>

#include "common/panic.h"

namespace raefs {

MemBlockDevice::MemBlockDevice(uint64_t block_count, SimClockPtr clock,
                               LatencyModel latency)
    : blocks_(block_count),
      clock_(std::move(clock)),
      latency_(latency),
      persisted_(block_count * kBlockSize, 0) {}

Status MemBlockDevice::read_block(BlockNo block, std::span<uint8_t> out) {
  if (block >= blocks_ || out.size() != kBlockSize) return Errno::kInval;
  charge(latency_.read_ns);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = overlay_.find(block);
  if (it != overlay_.end()) {
    std::memcpy(out.data(), it->second.data(), kBlockSize);
  } else {
    std::memcpy(out.data(), persisted_.data() + block * kBlockSize, kBlockSize);
  }
  return Status::Ok();
}

Status MemBlockDevice::write_block(BlockNo block,
                                   std::span<const uint8_t> data) {
  if (block >= blocks_ || data.size() != kBlockSize) return Errno::kInval;
  charge(latency_.write_ns);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::shared_mutex> lk(mu_);
  overlay_[block].assign(data.begin(), data.end());
  return Status::Ok();
}

Status MemBlockDevice::flush() {
  charge(latency_.flush_ns);
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::shared_mutex> lk(mu_);
  for (const auto& [block, data] : overlay_) {
    std::memcpy(persisted_.data() + block * kBlockSize, data.data(),
                kBlockSize);
  }
  overlay_.clear();
  return Status::Ok();
}

void MemBlockDevice::crash(Rng* rng, double survive_prob) {
  std::lock_guard<std::shared_mutex> lk(mu_);
  for (const auto& [block, data] : overlay_) {
    if (rng != nullptr && rng->chance(survive_prob)) {
      std::memcpy(persisted_.data() + block * kBlockSize, data.data(),
                  kBlockSize);
    }
  }
  overlay_.clear();
}

size_t MemBlockDevice::volatile_blocks() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return overlay_.size();
}

std::vector<uint8_t> MemBlockDevice::persisted_image() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return persisted_;
}

std::unique_ptr<MemBlockDevice> MemBlockDevice::clone_full() const {
  auto copy = std::make_unique<MemBlockDevice>(blocks_, nullptr,
                                               LatencyModel::none());
  std::lock_guard<std::shared_mutex> lk(mu_);
  copy->persisted_ = persisted_;
  for (const auto& [block, data] : overlay_) {
    std::memcpy(copy->persisted_.data() + block * kBlockSize, data.data(),
                kBlockSize);
  }
  return copy;
}

Status ReadOnlyDevice::write_block(BlockNo block,
                                   std::span<const uint8_t> data) {
  (void)block;
  (void)data;
  refused_.fetch_add(1, std::memory_order_relaxed);
  SHADOW_CHECK(false, "write attempted through read-only device view");
  return Errno::kRoFs;  // unreachable
}

Status ReadOnlyDevice::flush() {
  refused_.fetch_add(1, std::memory_order_relaxed);
  SHADOW_CHECK(false, "flush attempted through read-only device view");
  return Errno::kRoFs;  // unreachable
}

}  // namespace raefs
