#include "blockdev/qdepth_probe.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/worker_pool.h"

namespace raefs {
namespace {

// Reads per thread at each concurrency level: enough to amortize thread
// wake-up against the per-IO latency being measured, small enough that
// the whole probe stays well under a couple of milliseconds on an SSD-
// class device (4 levels x 4 reads x ~50us, overlapped).
constexpr uint32_t kReadsPerThread = 4;

// Below this single-read latency the device is effectively latency-free
// (an in-memory store): there is no IO wait to overlap, concurrency buys
// nothing, and timing a batch would measure scheduler noise.
constexpr uint64_t kLatencyFreeNs = 2000;

// A level earns its concurrency only by beating the level below it by
// this factor; perfect scaling would be 2.0, and anything under ~1.3x is
// within the noise a loaded host produces.
constexpr double kScalingThreshold = 1.3;

// Batches per ladder level, keeping the best (minimum) time. Scheduler
// noise on a loaded host only ever makes a batch slower -- a delayed
// worker wake-up inflates the wall clock, nothing deflates it -- so the
// minimum is the robust estimate of what the device can actually
// overlap, and one unlucky batch cannot truncate the ladder at depth 1.
constexpr uint32_t kTrialsPerLevel = 3;

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministic sample spread across the device (a large odd stride mod
/// block_count visits distinct blocks without clustering).
BlockNo sample_block(const BlockDevice* dev, uint64_t i) {
  uint64_t count = dev->block_count();
  return count == 0 ? 0 : (i * 2654435761ull) % count;
}

/// Wall-clock seconds for `threads` workers each issuing kReadsPerThread
/// sampled reads concurrently. The pool is constructed outside the timed
/// window so thread spawn cost never pollutes the measurement.
double timed_batch(BlockDevice* dev, uint32_t threads, uint64_t salt) {
  WorkerPool pool(threads);
  const uint64_t t0 = now_ns();
  pool.run(threads, [&](uint64_t t) {
    std::vector<uint8_t> buf(kBlockSize);
    for (uint32_t i = 0; i < kReadsPerThread; ++i) {
      (void)dev->read_block(
          sample_block(dev, salt + t * kReadsPerThread + i), buf);
    }
  });
  return static_cast<double>(now_ns() - t0) * 1e-9;
}

/// Best (minimum) of kTrialsPerLevel batches; see kTrialsPerLevel.
double best_batch(BlockDevice* dev, uint32_t threads, uint64_t* salt) {
  double best = 0.0;
  for (uint32_t trial = 0; trial < kTrialsPerLevel; ++trial) {
    double cur = timed_batch(dev, threads, *salt);
    *salt += threads * kReadsPerThread;
    if (trial == 0 || cur < best) best = cur;
  }
  return best;
}

}  // namespace

QdepthProbeResult probe_queue_depth(BlockDevice* dev) {
  QdepthProbeResult result;
  if (dev == nullptr || dev->block_count() == 0) return result;

  // Single-stream latency first (also warms any read path caches).
  std::vector<uint8_t> buf(kBlockSize);
  const uint64_t t0 = now_ns();
  for (uint32_t i = 0; i < kReadsPerThread; ++i) {
    (void)dev->read_block(sample_block(dev, i), buf);
  }
  result.single_read_ns = (now_ns() - t0) / kReadsPerThread;
  if (result.single_read_ns < kLatencyFreeNs) return result;  // depth 1

  // Walk the concurrency ladder; stop at the first level that fails to
  // scale over the one below (devices saturate monotonically, so levels
  // past the knee cannot earn it back).
  uint64_t salt = kReadsPerThread;
  double prev = best_batch(dev, 1, &salt);
  uint32_t depth = 1;
  for (uint32_t level = 2; level <= 16; level *= 2) {
    double cur = best_batch(dev, level, &salt);
    // Throughput ratio vs the previous level: same per-thread work, so
    // level/prev-level throughput = 2 * prev_time / cur_time.
    if (cur <= 0.0 || 2.0 * prev / cur < kScalingThreshold) break;
    depth = level;
    prev = cur;
  }
  result.effective_depth = depth;
  return result;
}

namespace {
std::mutex g_cache_mu;
std::unordered_map<const BlockDevice*, QdepthProbeResult>& cache() {
  static auto* c =
      new std::unordered_map<const BlockDevice*, QdepthProbeResult>();
  return *c;
}
}  // namespace

QdepthProbeResult cached_queue_depth(BlockDevice* dev) {
  {
    std::lock_guard<std::mutex> lk(g_cache_mu);
    auto it = cache().find(dev);
    if (it != cache().end()) return it->second;
  }
  QdepthProbeResult r = probe_queue_depth(dev);
  std::lock_guard<std::mutex> lk(g_cache_mu);
  return cache().try_emplace(dev, r).first->second;
}

void clear_queue_depth_cache() {
  std::lock_guard<std::mutex> lk(g_cache_mu);
  cache().clear();
}

uint32_t resolve_workers(uint32_t knob, BlockDevice* dev) {
  if (knob != 0) return knob;
  return std::clamp(cached_queue_depth(dev).effective_depth, 1u, 8u);
}

}  // namespace raefs
