#include "blockdev/async_device.h"

#include "obs/metrics.h"
#include "obs/names.h"

namespace raefs {
namespace {

// Global (cross-instance) block-layer metrics; registered once, then each
// update is one relaxed atomic op.
struct BlockdevMetrics {
  obs::Counter& reads = obs::metrics().counter(obs::kMBlockdevReads);
  obs::Counter& writes = obs::metrics().counter(obs::kMBlockdevWrites);
  obs::Counter& writev_batches =
      obs::metrics().counter(obs::kMBlockdevWritevBatches);
  obs::Counter& flushes = obs::metrics().counter(obs::kMBlockdevFlushes);
  obs::Gauge& inflight = obs::metrics().gauge(obs::kMBlockdevInflight);
};

BlockdevMetrics& bm() {
  static BlockdevMetrics m;
  return m;
}

}  // namespace

AsyncBlockDevice::AsyncBlockDevice(BlockDevice* inner, int workers)
    : inner_(inner) {
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncBlockDevice::~AsyncBlockDevice() { shutdown(); }

void AsyncBlockDevice::enqueue(Request req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;  // dropped; callers should not race shutdown
    queue_.push_back(std::move(req));
  }
  bm().inflight.add(1);
  cv_.notify_one();
}

void AsyncBlockDevice::submit_read(BlockNo block, ReadCallback done) {
  bm().reads.inc();
  Request r;
  r.kind = Request::Kind::kRead;
  r.block = block;
  r.read_done = std::move(done);
  enqueue(std::move(r));
}

void AsyncBlockDevice::submit_write(BlockNo block, std::vector<uint8_t> data,
                                    WriteCallback done) {
  submit_write(block, std::make_shared<const std::vector<uint8_t>>(std::move(data)),
               std::move(done));
}

void AsyncBlockDevice::submit_write(BlockNo block, BlockBufPtr data,
                                    WriteCallback done) {
  bm().writes.inc();
  Request r;
  r.kind = Request::Kind::kWrite;
  r.block = block;
  r.data = std::move(data);
  r.write_done = std::move(done);
  enqueue(std::move(r));
}

void AsyncBlockDevice::submit_writev(BlockNo first,
                                     std::vector<BlockBufPtr> bufs,
                                     WriteCallback done) {
  if (bufs.empty()) {
    if (done) done(Status::Ok());
    return;
  }
  bm().writev_batches.inc();
  bm().writes.inc(bufs.size());
  Request r;
  r.kind = Request::Kind::kWritev;
  r.block = first;
  r.bufs = std::move(bufs);
  r.write_done = std::move(done);
  enqueue(std::move(r));
}

void AsyncBlockDevice::submit_flush(WriteCallback done) {
  bm().flushes.inc();
  Request r;
  r.kind = Request::Kind::kFlush;
  r.write_done = std::move(done);
  enqueue(std::move(r));
}

void AsyncBlockDevice::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t AsyncBlockDevice::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size() + in_flight_;
}

void AsyncBlockDevice::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void AsyncBlockDevice::worker_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] {
        if (stopping_ && queue_.empty()) return true;
        if (queue_.empty()) return false;
        // Flush barrier: a flush at the head waits for in-flight IO; any
        // request waits while a flush is running.
        if (flush_in_progress_) return false;
        if (queue_.front().kind == Request::Kind::kFlush) {
          return in_flight_ == 0;
        }
        return true;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      if (req.kind == Request::Kind::kFlush) flush_in_progress_ = true;
    }

    switch (req.kind) {
      case Request::Kind::kRead: {
        std::vector<uint8_t> buf(inner_->block_size());
        Status st = inner_->read_block(req.block, buf);
        if (req.read_done) req.read_done(st, std::move(buf));
        break;
      }
      case Request::Kind::kWrite: {
        Status st = inner_->write_block(req.block, *req.data);
        if (req.write_done) req.write_done(st);
        break;
      }
      case Request::Kind::kWritev: {
        Status st = Status::Ok();
        for (size_t i = 0; i < req.bufs.size(); ++i) {
          st = inner_->write_block(req.block + i, *req.bufs[i]);
          if (!st.ok()) break;
        }
        if (req.write_done) req.write_done(st);
        break;
      }
      case Request::Kind::kFlush: {
        Status st = inner_->flush();
        if (req.write_done) req.write_done(st);
        break;
      }
    }

    // Release payload references before completion is observable: a
    // drained caller must be able to mutate its buffers without tripping
    // copy-on-write against a request we are still tearing down.
    req.data.reset();
    req.bufs.clear();

    bm().inflight.add(-1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (req.kind == Request::Kind::kFlush) flush_in_progress_ = false;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
    cv_.notify_all();
  }
}

}  // namespace raefs
