// Block device abstraction shared by the base filesystem (through its
// asynchronous block layer) and the shadow filesystem (direct synchronous
// reads through a read-only view).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"

namespace raefs {

/// IO counters, readable concurrently. Benchmarks use these to show e.g.
/// that the shadow performs only reads (never writes).
struct DeviceStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> flushes{0};
};

/// Abstract fixed-block-size storage device. Implementations are
/// internally synchronized: concurrent calls from base-filesystem threads
/// are safe.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;

  /// Read one block. `out.size()` must equal block_size().
  virtual Status read_block(BlockNo block, std::span<uint8_t> out) = 0;

  /// Write one block to the device's (volatile) write cache.
  /// `data.size()` must equal block_size().
  virtual Status write_block(BlockNo block, std::span<const uint8_t> data) = 0;

  /// Persist all cached writes (write barrier). After flush() returns,
  /// every prior write survives a crash.
  virtual Status flush() = 0;

  virtual const DeviceStats& stats() const = 0;
};

/// Per-IO simulated-time costs. Advance a SimClock so experiments measure
/// deterministic device time instead of host wall time. Defaults model a
/// fast NVMe-class device.
struct LatencyModel {
  Nanos read_ns = 8 * kMicro;    // 4 KiB random read
  Nanos write_ns = 12 * kMicro;  // 4 KiB write into device cache + media
  Nanos flush_ns = 80 * kMicro;  // cache flush barrier

  static LatencyModel none() { return LatencyModel{0, 0, 0}; }
};

/// Optional capability: devices that can produce a consistent point-in-
/// time copy of their full contents (persisted + volatile). Used by the
/// supervisor's online scrub, which replays the journal and runs the
/// shadow cross-check against a snapshot while the base keeps serving.
class SnapshotCapable {
 public:
  virtual ~SnapshotCapable() = default;
  virtual std::unique_ptr<BlockDevice> snapshot() const = 0;
};

/// Read-only view over a device. The shadow filesystem is handed one of
/// these: a write is a violation of the shadow's core invariant (it must
/// never write to disk -- paper §2.3) and throws ShadowCheckError.
class ReadOnlyDevice final : public BlockDevice {
 public:
  explicit ReadOnlyDevice(BlockDevice* inner) : inner_(inner) {}

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t block_count() const override { return inner_->block_count(); }

  Status read_block(BlockNo block, std::span<uint8_t> out) override {
    return inner_->read_block(block, out);
  }

  Status write_block(BlockNo block, std::span<const uint8_t> data) override;
  Status flush() override;

  const DeviceStats& stats() const override { return inner_->stats(); }

  /// Number of write attempts that were refused (should stay 0).
  uint64_t refused_writes() const { return refused_.load(); }

 private:
  BlockDevice* inner_;
  std::atomic<uint64_t> refused_{0};
};

}  // namespace raefs
