// In-memory block device with explicit volatile-cache crash semantics.
//
// Writes land in a volatile overlay; flush() persists the overlay; crash()
// discards it (optionally keeping a random subset, modelling reordered
// writes that happened to reach media). This is the substrate for every
// crash-recovery and availability experiment.
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "common/clock.h"
#include "common/rng.h"

namespace raefs {

class MemBlockDevice final : public BlockDevice, public SnapshotCapable {
 public:
  /// Create a zero-filled device of `block_count` blocks. If `clock` is
  /// non-null, each IO advances it per `latency`.
  MemBlockDevice(uint64_t block_count, SimClockPtr clock = nullptr,
                 LatencyModel latency = LatencyModel::none());

  uint32_t block_size() const override { return kBlockSize; }
  uint64_t block_count() const override { return blocks_; }

  Status read_block(BlockNo block, std::span<uint8_t> out) override;
  Status write_block(BlockNo block, std::span<const uint8_t> data) override;
  Status flush() override;

  const DeviceStats& stats() const override { return stats_; }

  /// Simulate a power failure: volatile (unflushed) writes are lost. If
  /// `rng` is given, each volatile write independently survives with
  /// probability `survive_prob` (modelling drive-internal reordering that
  /// persisted some blocks before power was cut).
  void crash(Rng* rng = nullptr, double survive_prob = 0.0);

  /// Number of blocks currently dirty in the volatile cache.
  size_t volatile_blocks() const;

  /// Copy of the *persisted* image (what a crash would leave behind).
  std::vector<uint8_t> persisted_image() const;

  /// Deep copy of the full current device state (persisted + volatile all
  /// treated as persisted) -- used to hand the shadow a stable snapshot.
  std::unique_ptr<MemBlockDevice> clone_full() const;

  /// SnapshotCapable: same as clone_full().
  std::unique_ptr<BlockDevice> snapshot() const override {
    return clone_full();
  }

 private:
  void charge(Nanos d) {
    if (clock_ && d) clock_->advance(d);
  }

  const uint64_t blocks_;
  SimClockPtr clock_;
  LatencyModel latency_;
  DeviceStats stats_;

  mutable std::shared_mutex mu_;  // reader-writer: parallel recovery
                                  // workers read concurrently
  std::vector<uint8_t> persisted_;                            // blocks_ * kBlockSize
  std::unordered_map<BlockNo, std::vector<uint8_t>> overlay_; // volatile cache
};

}  // namespace raefs
