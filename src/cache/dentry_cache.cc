#include "cache/dentry_cache.h"

#include <algorithm>

namespace raefs {

DentryCache::DentryCache(size_t capacity, int shards)
    : per_shard_capacity_(
          std::max<size_t>(1, capacity / static_cast<size_t>(shards))),
      shards_(static_cast<size_t>(shards)) {}

std::optional<DentryValue> DentryCache::lookup(Ino parent,
                                               std::string_view name) const {
  const Shard& s = shard_of(parent, name);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(Key{parent, std::string(name)});
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

void DentryCache::insert_value(Ino parent, std::string_view name,
                               DentryValue v) {
  Shard& s = shard_of(parent, name);
  Key key{parent, std::string(name)};
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second.value = v;
    s.lru.erase(it->second.lru_pos);
    s.lru.push_front(key);
    it->second.lru_pos = s.lru.begin();
    return;
  }
  if (s.map.size() >= per_shard_capacity_ && !s.lru.empty()) {
    s.map.erase(s.lru.back());
    s.lru.pop_back();
  }
  s.lru.push_front(key);
  Entry e;
  e.value = v;
  e.lru_pos = s.lru.begin();
  s.map.emplace(std::move(key), std::move(e));
}

void DentryCache::insert(Ino parent, std::string_view name, Ino child,
                         FileType type) {
  insert_value(parent, name, DentryValue{child, type});
}

void DentryCache::insert_negative(Ino parent, std::string_view name) {
  insert_value(parent, name, DentryValue{kInvalidIno, FileType::kNone});
}

void DentryCache::invalidate(Ino parent, std::string_view name) {
  Shard& s = shard_of(parent, name);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(Key{parent, std::string(name)});
  if (it != s.map.end()) {
    s.lru.erase(it->second.lru_pos);
    s.map.erase(it);
  }
}

void DentryCache::invalidate_dir(Ino parent) {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.parent == parent) {
        s.lru.erase(it->second.lru_pos);
        it = s.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void DentryCache::drop_all() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.clear();
    s.lru.clear();
  }
}

size_t DentryCache::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.map.size();
  }
  return total;
}

}  // namespace raefs
