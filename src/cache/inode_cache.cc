#include "cache/inode_cache.h"

#include <algorithm>

namespace raefs {

std::optional<DiskInode> InodeCache::get(Ino ino) const {
  const Shard& s = shard_of(ino);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(ino);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.inode;
}

void InodeCache::put(Ino ino, const DiskInode& inode, bool dirty) {
  Shard& s = shard_of(ino);
  std::lock_guard<std::mutex> lk(s.mu);
  auto& e = s.map[ino];
  e.inode = inode;
  e.dirty = e.dirty || dirty;
}

void InodeCache::erase(Ino ino) {
  Shard& s = shard_of(ino);
  std::lock_guard<std::mutex> lk(s.mu);
  s.map.erase(ino);
}

std::vector<std::pair<Ino, DiskInode>> InodeCache::dirty_snapshot() const {
  std::vector<std::pair<Ino, DiskInode>> out;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [ino, e] : s.map) {
      if (e.dirty) out.emplace_back(ino, e.inode);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void InodeCache::mark_clean(Ino ino) {
  Shard& s = shard_of(ino);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(ino);
  if (it != s.map.end()) it->second.dirty = false;
}

void InodeCache::drop_all() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.clear();
  }
}

size_t InodeCache::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.map.size();
  }
  return total;
}

}  // namespace raefs
