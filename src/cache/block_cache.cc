#include "cache/block_cache.h"

#include <algorithm>
#include <cstdint>

namespace raefs {

BlockCache::BlockCache(BlockDevice* dev, size_t capacity, int shards)
    : dev_(dev),
      per_shard_capacity_(std::max<size_t>(1, capacity / static_cast<size_t>(shards))),
      shards_(static_cast<size_t>(shards)) {}

Result<BlockCache::Entry*> BlockCache::load_locked(Shard& s, BlockNo block) {
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    touch_locked(s, block, it->second);
    return &it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto data = std::make_shared<BlockBuf>(dev_->block_size());
  RAEFS_TRY_VOID(dev_->read_block(block, *data));
  evict_locked(s);
  s.lru.push_front(block);
  s.clean_lru.push_front(block);
  Entry e;
  e.data = std::move(data);
  e.lru_pos = s.lru.begin();
  e.clean_pos = s.clean_lru.begin();
  auto [pos, inserted] = s.map.emplace(block, std::move(e));
  (void)inserted;
  return &pos->second;
}

void BlockCache::touch_locked(Shard& s, BlockNo block, Entry& e) {
  (void)block;
  s.lru.splice(s.lru.begin(), s.lru, e.lru_pos);
  if (!e.dirty) s.clean_lru.splice(s.clean_lru.begin(), s.clean_lru, e.clean_pos);
}

void BlockCache::evict_locked(Shard& s) {
  // Evict least-recently-used *clean* blocks; dirty blocks are pinned.
  // The clean-LRU list makes each eviction O(1) even when dirty blocks
  // dominate the shard. When everything is dirty the cache grows past
  // capacity (soft limit); the clean list lets it shrink back as soon as
  // write-back marks blocks clean again.
  while (s.map.size() >= per_shard_capacity_ && !s.clean_lru.empty()) {
    BlockNo victim = s.clean_lru.back();
    auto it = s.map.find(victim);
    s.clean_lru.pop_back();
    s.lru.erase(it->second.lru_pos);
    s.map.erase(it);
  }
}

void BlockCache::mark_dirty_locked(Shard& s, BlockNo block, Entry& e) {
  // Every dirtying touch retags with the current open epoch, even when the
  // entry is already dirty: the commit engine relies on the tag naming the
  // *latest* epoch that modified the block (mark_clean_upto must not clean
  // a block re-dirtied after its snapshot was taken).
  e.epoch = open_epoch_.load(std::memory_order_acquire);
  if (e.dirty) return;
  e.dirty = true;
  s.clean_lru.erase(e.clean_pos);
  s.dirty_list.push_front(block);
  e.dirty_pos = s.dirty_list.begin();
  ++s.dirty_count;
}

void BlockCache::ensure_unique_locked(Entry& e) {
  // A handle escaped via read() or dirty_snapshot(): clone before writing
  // so the holder keeps its point-in-time view. Handles are only acquired
  // under the shard lock, so a use_count of 1 here cannot race upward.
  if (e.data.use_count() > 1) {
    cow_clones_.fetch_add(1, std::memory_order_relaxed);
    bytes_copied_.fetch_add(e.data->size(), std::memory_order_relaxed);
    e.data = std::make_shared<BlockBuf>(*e.data);
  }
}

Result<BlockRef> BlockCache::read(BlockNo block) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  RAEFS_TRY(Entry * e, load_locked(s, block));
  return BlockRef(BlockBufPtr(e->data));
}

Status BlockCache::write(BlockNo block, std::vector<uint8_t> data) {
  if (data.size() != dev_->block_size()) return Errno::kInval;
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    // Whole-block replace: swap in the new buffer, never copy.
    it->second.data = std::make_shared<BlockBuf>(std::move(data));
    mark_dirty_locked(s, block, it->second);
    touch_locked(s, block, it->second);
    return Status::Ok();
  }
  evict_locked(s);
  s.lru.push_front(block);
  Entry e;
  e.data = std::make_shared<BlockBuf>(std::move(data));
  e.dirty = true;
  e.epoch = open_epoch_.load(std::memory_order_acquire);
  e.lru_pos = s.lru.begin();
  s.dirty_list.push_front(block);
  e.dirty_pos = s.dirty_list.begin();
  s.map.emplace(block, std::move(e));
  ++s.dirty_count;
  return Status::Ok();
}

Status BlockCache::modify(BlockNo block,
                          const std::function<void(std::span<uint8_t>)>& fn) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  RAEFS_TRY(Entry * e, load_locked(s, block));
  ensure_unique_locked(*e);
  fn(std::span<uint8_t>(*e->data));
  mark_dirty_locked(s, block, *e);
  return Status::Ok();
}

std::vector<std::pair<BlockNo, BlockBufPtr>>
BlockCache::dirty_snapshot() const {
  return dirty_snapshot_range(0, UINT64_MAX);
}

std::vector<std::pair<BlockNo, BlockBufPtr>>
BlockCache::dirty_snapshot_range(uint64_t after, uint64_t upto) const {
  std::vector<std::pair<BlockNo, BlockBufPtr>> out;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    out.reserve(out.size() + s.dirty_count);
    // The dirty list holds exactly the dirty entries: O(dirty) per shard.
    for (BlockNo block : s.dirty_list) {
      const Entry& e = s.map.at(block);
      if (e.epoch > after && e.epoch <= upto) {
        out.emplace_back(block, BlockBufPtr(e.data));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void BlockCache::mark_clean(std::span<const BlockNo> blocks) {
  mark_clean_upto(blocks, UINT64_MAX);
}

void BlockCache::mark_clean_upto(std::span<const BlockNo> blocks,
                                 uint64_t upto) {
  for (BlockNo block : blocks) {
    Shard& s = shard_of(block);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(block);
    if (it != s.map.end() && it->second.dirty && it->second.epoch <= upto) {
      it->second.dirty = false;
      --s.dirty_count;
      s.dirty_list.erase(it->second.dirty_pos);
      s.clean_lru.push_front(block);
      it->second.clean_pos = s.clean_lru.begin();
    }
  }
}

void BlockCache::install_clean(
    const std::vector<std::pair<BlockNo, BlockBufPtr>>& blocks) {
  for (const auto& [block, buf] : blocks) {
    if (!buf || buf->size() != dev_->block_size()) continue;
    Shard& s = shard_of(block);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(block);
    if (it != s.map.end()) {
      Entry& e = it->second;
      e.data = std::make_shared<BlockBuf>(*buf);
      if (e.dirty) {
        e.dirty = false;
        --s.dirty_count;
        s.dirty_list.erase(e.dirty_pos);
        s.clean_lru.push_front(block);
        e.clean_pos = s.clean_lru.begin();
      }
      touch_locked(s, block, e);
      continue;
    }
    evict_locked(s);
    s.lru.push_front(block);
    s.clean_lru.push_front(block);
    Entry e;
    e.data = std::make_shared<BlockBuf>(*buf);
    e.lru_pos = s.lru.begin();
    e.clean_pos = s.clean_lru.begin();
    s.map.emplace(block, std::move(e));
  }
}

void BlockCache::drop_all() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.clear();
    s.lru.clear();
    s.clean_lru.clear();
    s.dirty_list.clear();
    s.dirty_count = 0;
  }
}

void BlockCache::drop(BlockNo block) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    s.lru.erase(it->second.lru_pos);
    if (it->second.dirty) {
      --s.dirty_count;
      s.dirty_list.erase(it->second.dirty_pos);
    } else {
      s.clean_lru.erase(it->second.clean_pos);
    }
    s.map.erase(it);
  }
}

size_t BlockCache::cached_blocks() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.map.size();
  }
  return total;
}

size_t BlockCache::dirty_blocks() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.dirty_count;
  }
  return total;
}

}  // namespace raefs
