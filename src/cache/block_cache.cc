#include "cache/block_cache.h"

#include <algorithm>

namespace raefs {

BlockCache::BlockCache(BlockDevice* dev, size_t capacity, int shards)
    : dev_(dev),
      per_shard_capacity_(std::max<size_t>(1, capacity / static_cast<size_t>(shards))),
      shards_(static_cast<size_t>(shards)) {}

Result<BlockCache::Entry*> BlockCache::load_locked(Shard& s, BlockNo block) {
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    touch_locked(s, block, it->second);
    return &it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> data(dev_->block_size());
  RAEFS_TRY_VOID(dev_->read_block(block, data));
  evict_locked(s);
  s.lru.push_front(block);
  Entry e;
  e.data = std::move(data);
  e.lru_pos = s.lru.begin();
  auto [pos, inserted] = s.map.emplace(block, std::move(e));
  (void)inserted;
  return &pos->second;
}

void BlockCache::touch_locked(Shard& s, BlockNo block, Entry& e) {
  s.lru.erase(e.lru_pos);
  s.lru.push_front(block);
  e.lru_pos = s.lru.begin();
}

void BlockCache::evict_locked(Shard& s) {
  if (s.map.size() < per_shard_capacity_) return;
  // Evict the least-recently-used *clean* block; dirty blocks are pinned.
  for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
    auto mit = s.map.find(*it);
    if (mit != s.map.end() && !mit->second.dirty) {
      s.lru.erase(std::next(it).base());
      s.map.erase(mit);
      return;
    }
  }
  // All dirty: allow the cache to grow past capacity (soft limit).
}

Result<std::vector<uint8_t>> BlockCache::read(BlockNo block) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  RAEFS_TRY(Entry * e, load_locked(s, block));
  return e->data;
}

Status BlockCache::write(BlockNo block, std::vector<uint8_t> data) {
  if (data.size() != dev_->block_size()) return Errno::kInval;
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    it->second.data = std::move(data);
    it->second.dirty = true;
    touch_locked(s, block, it->second);
    return Status::Ok();
  }
  evict_locked(s);
  s.lru.push_front(block);
  Entry e;
  e.data = std::move(data);
  e.dirty = true;
  e.lru_pos = s.lru.begin();
  s.map.emplace(block, std::move(e));
  return Status::Ok();
}

Status BlockCache::modify(BlockNo block,
                          const std::function<void(std::span<uint8_t>)>& fn) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  RAEFS_TRY(Entry * e, load_locked(s, block));
  fn(std::span<uint8_t>(e->data));
  e->dirty = true;
  return Status::Ok();
}

std::vector<std::pair<BlockNo, std::vector<uint8_t>>>
BlockCache::dirty_snapshot() const {
  std::vector<std::pair<BlockNo, std::vector<uint8_t>>> out;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [block, e] : s.map) {
      if (e.dirty) out.emplace_back(block, e.data);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void BlockCache::mark_clean(std::span<const BlockNo> blocks) {
  for (BlockNo block : blocks) {
    Shard& s = shard_of(block);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(block);
    if (it != s.map.end()) it->second.dirty = false;
  }
}

void BlockCache::drop_all() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.clear();
    s.lru.clear();
  }
}

void BlockCache::drop(BlockNo block) {
  Shard& s = shard_of(block);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    s.lru.erase(it->second.lru_pos);
    s.map.erase(it);
  }
}

size_t BlockCache::cached_blocks() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.map.size();
  }
  return total;
}

size_t BlockCache::dirty_blocks() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [block, e] : s.map) {
      (void)block;
      if (e.dirty) ++total;
    }
  }
  return total;
}

}  // namespace raefs
