// Dentry cache: (parent ino, component name) -> child ino lookups,
// including negative entries. The base consults it on every path walk;
// the shadow instead always walks from the root (paper §3.3).
#pragma once

#include <atomic>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace raefs {

/// A positive entry maps to the child's ino and type; a negative entry
/// records a known-absent name (ino == kInvalidIno).
struct DentryValue {
  Ino ino = kInvalidIno;
  FileType type = FileType::kNone;
  bool negative() const { return ino == kInvalidIno; }
};

class DentryCache {
 public:
  explicit DentryCache(size_t capacity = 4096, int shards = 8);

  /// Cached lookup; nullopt = not cached (must hit the directory blocks).
  std::optional<DentryValue> lookup(Ino parent, std::string_view name) const;

  /// Insert a positive entry.
  void insert(Ino parent, std::string_view name, Ino child, FileType type);

  /// Insert a negative entry (lookup miss, cached to avoid rescans).
  void insert_negative(Ino parent, std::string_view name);

  /// Invalidate one entry (unlink/rename/create over a negative entry).
  void invalidate(Ino parent, std::string_view name);

  /// Invalidate everything under a parent (rmdir, directory rename).
  void invalidate_dir(Ino parent);

  /// Drop everything -- contained reboot.
  void drop_all();

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    Ino parent;
    std::string name;
    bool operator==(const Key& o) const {
      return parent == o.parent && name == o.name;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<Ino>()(k.parent) ^
             (std::hash<std::string>()(k.name) * 1099511628211ull);
    }
  };
  struct Entry {
    DentryValue value;
    std::list<Key>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
    std::list<Key> lru;
  };

  Shard& shard_of(Ino parent, std::string_view name) {
    return shards_[(parent ^ std::hash<std::string_view>()(name)) %
                   shards_.size()];
  }
  const Shard& shard_of(Ino parent, std::string_view name) const {
    return shards_[(parent ^ std::hash<std::string_view>()(name)) %
                   shards_.size()];
  }

  void insert_value(Ino parent, std::string_view name, DentryValue v);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace raefs
