// Sharded write-back LRU block cache -- the base filesystem's page-cache
// analogue. One of the performance components (Figure 2, left) that the
// shadow filesystem deliberately omits.
//
// Dirty blocks are pinned: eviction only removes clean blocks, preserving
// write-ahead ordering (a dirty metadata block must not reach the device
// before its journal transaction commits). The owner (BaseFs) is
// responsible for write-back via dirty_snapshot()/mark_clean().
#pragma once

#include <functional>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "common/result.h"

namespace raefs {

class BlockCache {
 public:
  /// `capacity` is a soft limit in blocks; dirty blocks never count
  /// against it for eviction purposes (they cannot be evicted).
  BlockCache(BlockDevice* dev, size_t capacity, int shards = 8);

  /// Read-through: returns a copy of the block's current (possibly dirty)
  /// contents.
  Result<std::vector<uint8_t>> read(BlockNo block);

  /// Replace the cached contents and mark dirty. No device IO.
  Status write(BlockNo block, std::vector<uint8_t> data);

  /// Read-modify-write under the shard lock: loads the block if needed,
  /// applies `fn` to its bytes, marks dirty.
  Status modify(BlockNo block,
                const std::function<void(std::span<uint8_t>)>& fn);

  /// Copies of all dirty blocks, ordered by block number (deterministic
  /// journaling order).
  std::vector<std::pair<BlockNo, std::vector<uint8_t>>> dirty_snapshot() const;

  /// Mark blocks clean after the owner persisted them.
  void mark_clean(std::span<const BlockNo> blocks);

  /// Drop every cached block, dirty or not. Used only by the contained
  /// reboot: all in-memory state is untrusted after an error.
  void drop_all();

  /// Drop a single (clean or dirty) block, e.g. after freeing it.
  void drop(BlockNo block);

  size_t cached_blocks() const;
  size_t dirty_blocks() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<BlockNo>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, Entry> map;
    std::list<BlockNo> lru;  // front = most recent
  };

  Shard& shard_of(BlockNo block) {
    return shards_[block % shards_.size()];
  }
  const Shard& shard_of(BlockNo block) const {
    return shards_[block % shards_.size()];
  }

  // Must hold s.mu. Loads block into the shard if absent.
  Result<Entry*> load_locked(Shard& s, BlockNo block);
  void touch_locked(Shard& s, BlockNo block, Entry& e);
  void evict_locked(Shard& s);

  BlockDevice* dev_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace raefs
