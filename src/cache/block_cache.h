// Sharded write-back LRU block cache -- the base filesystem's page-cache
// analogue. One of the performance components (Figure 2, left) that the
// shadow filesystem deliberately omits.
//
// Buffer ownership (zero-copy protocol):
//   - Cached payloads are shared_ptr-owned immutable buffers (BlockBufPtr).
//     read() returns a refcounted handle without copying the payload;
//     dirty_snapshot() likewise hands out handles, not deep copies.
//   - modify()/write() follow copy-on-write: a buffer is cloned only when
//     a handle to it is still held outside the cache (use_count > 1);
//     an unshared buffer is mutated in place. The cow_clones() and
//     bytes_copied() counters account every payload copy the cache makes.
//   - A handle observes the block as it was at read() time; later writes
//     to the same block never mutate a buffer that escaped the cache.
//
// Dirty blocks are pinned: eviction only removes clean blocks, preserving
// write-ahead ordering (a dirty metadata block must not reach the device
// before its journal transaction commits). Clean blocks live on a
// dedicated clean-LRU list so eviction is O(1) regardless of how many
// dirty blocks are piled up. The owner (BaseFs) is responsible for
// write-back via dirty_snapshot()/mark_clean().
//
// Commit epochs: every dirtying touch tags the entry with the cache's
// current open epoch (set_open_epoch()). The owner's group-commit engine
// snapshots one epoch range at a time (dirty_snapshot_range) and cleans
// with mark_clean_upto(), which skips entries re-dirtied under a newer
// epoch -- a block modified after its snapshot was taken stays dirty and
// is picked up by the next commit. Dirty entries additionally live on a
// per-shard dirty list so snapshots walk O(dirty), not O(cached).
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "common/result.h"

namespace raefs {

/// Read-only, refcounted view of one cached block. Cheap to copy; keeps
/// the underlying buffer alive (and CoW-protected) while held.
class BlockRef {
 public:
  BlockRef() = default;
  explicit BlockRef(BlockBufPtr buf) : buf_(std::move(buf)) {}

  const uint8_t* data() const { return buf_->data(); }
  size_t size() const { return buf_ ? buf_->size() : 0; }
  uint8_t operator[](size_t i) const { return (*buf_)[i]; }
  const uint8_t* begin() const { return buf_->data(); }
  const uint8_t* end() const { return buf_->data() + buf_->size(); }

  operator std::span<const uint8_t>() const {
    return {buf_->data(), buf_->size()};
  }
  std::span<const uint8_t> span() const { return *this; }
  const BlockBuf& vec() const { return *buf_; }
  const BlockBufPtr& handle() const { return buf_; }
  explicit operator bool() const { return buf_ != nullptr; }

 private:
  BlockBufPtr buf_;
};

class BlockCache {
 public:
  /// `capacity` is a soft limit in blocks; dirty blocks never count
  /// against it for eviction purposes (they cannot be evicted).
  BlockCache(BlockDevice* dev, size_t capacity, int shards = 8);

  /// Read-through: returns a refcounted handle to the block's current
  /// (possibly dirty) contents. Hits copy no payload bytes.
  Result<BlockRef> read(BlockNo block);

  /// Replace the cached contents and mark dirty. No device IO.
  Status write(BlockNo block, std::vector<uint8_t> data);

  /// Read-modify-write under the shard lock: loads the block if needed,
  /// clones it if a handle is held elsewhere (CoW), applies `fn` to its
  /// bytes, marks dirty.
  Status modify(BlockNo block,
                const std::function<void(std::span<uint8_t>)>& fn);

  /// Refcounted handles to all dirty blocks, ordered by block number
  /// (deterministic journaling order). No payload copies.
  std::vector<std::pair<BlockNo, BlockBufPtr>> dirty_snapshot() const;

  /// Handles to dirty blocks whose epoch tag is in (after, upto], ordered
  /// by block number. The group-commit delta: blocks already journaled by
  /// a staged transaction (tag <= after) and blocks dirtied under a newer
  /// open epoch (tag > upto) are both excluded. No payload copies.
  std::vector<std::pair<BlockNo, BlockBufPtr>> dirty_snapshot_range(
      uint64_t after, uint64_t upto) const;

  /// Mark blocks clean after the owner persisted them.
  void mark_clean(std::span<const BlockNo> blocks);

  /// Epoch-aware mark_clean: only entries still tagged <= `upto` become
  /// clean. A block re-dirtied after its snapshot was taken carries a
  /// newer tag and must stay dirty (its latest content is unpersisted).
  void mark_clean_upto(std::span<const BlockNo> blocks, uint64_t upto);

  /// Bulk install-as-clean (the recovery download's warm-up): replace each
  /// block's cached payload with the given bytes and leave the entry
  /// CLEAN. The caller guarantees the device already holds exactly these
  /// bytes -- the bulk install journals and writes them in place before
  /// calling -- so nothing here needs write-back. Escaped read handles
  /// keep their old point-in-time buffer; absent blocks are inserted.
  void install_clean(
      const std::vector<std::pair<BlockNo, BlockBufPtr>>& blocks);

  /// Advance the open epoch; subsequent dirtying touches tag with `epoch`.
  /// Called by the commit engine at epoch rotation (no concurrent ops).
  void set_open_epoch(uint64_t epoch) {
    open_epoch_.store(epoch, std::memory_order_release);
  }
  uint64_t open_epoch() const {
    return open_epoch_.load(std::memory_order_acquire);
  }

  /// Drop every cached block, dirty or not. Used only by the contained
  /// reboot: all in-memory state is untrusted after an error.
  void drop_all();

  /// Drop a single (clean or dirty) block, e.g. after freeing it.
  void drop(BlockNo block);

  size_t cached_blocks() const;
  /// O(1) per shard: maintained counters, no map walk.
  size_t dirty_blocks() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Buffers cloned because a handle was still held at modify() time.
  uint64_t cow_clones() const {
    return cow_clones_.load(std::memory_order_relaxed);
  }
  /// Total payload bytes the cache copied (CoW clones only; read hits and
  /// snapshots are copy-free by construction).
  uint64_t bytes_copied() const {
    return bytes_copied_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<BlockBuf> data;
    bool dirty = false;
    uint64_t epoch = 0;  // open epoch at the last dirtying touch
    std::list<BlockNo>::iterator lru_pos;
    std::list<BlockNo>::iterator clean_pos;  // valid iff !dirty
    std::list<BlockNo>::iterator dirty_pos;  // valid iff dirty
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, Entry> map;
    std::list<BlockNo> lru;        // all entries; front = most recent
    std::list<BlockNo> clean_lru;  // clean entries only; front = most recent
    std::list<BlockNo> dirty_list; // dirty entries only (snapshot walks)
    size_t dirty_count = 0;
  };

  Shard& shard_of(BlockNo block) {
    return shards_[block % shards_.size()];
  }
  const Shard& shard_of(BlockNo block) const {
    return shards_[block % shards_.size()];
  }

  // Must hold s.mu. Loads block into the shard if absent.
  Result<Entry*> load_locked(Shard& s, BlockNo block);
  void touch_locked(Shard& s, BlockNo block, Entry& e);
  void evict_locked(Shard& s);
  // Must hold s.mu. Retag with the open epoch; transition clean entries
  // to dirty (bookkeeping only).
  void mark_dirty_locked(Shard& s, BlockNo block, Entry& e);
  // Must hold s.mu. Clone e's buffer if a handle escaped (CoW).
  void ensure_unique_locked(Entry& e);

  BlockDevice* dev_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> open_epoch_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> cow_clones_{0};
  std::atomic<uint64_t> bytes_copied_{0};
};

}  // namespace raefs
