// In-memory inode cache (the base filesystem's icache analogue).
// Caches decoded DiskInode objects so hot inodes avoid repeated
// inode-table block decoding. Dirty inodes are flushed into the inode
// table through the block cache by the owner (BaseFs).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "format/inode.h"

namespace raefs {

class InodeCache {
 public:
  explicit InodeCache(int shards = 8) : shards_(static_cast<size_t>(shards)) {}

  /// Cached copy of `ino`, if present.
  std::optional<DiskInode> get(Ino ino) const;

  /// Insert/replace `ino`. `dirty` marks it as needing write-back.
  void put(Ino ino, const DiskInode& inode, bool dirty);

  /// Remove `ino` (e.g. after freeing it on disk).
  void erase(Ino ino);

  /// All dirty inodes, ordered by ino (deterministic flush order).
  std::vector<std::pair<Ino, DiskInode>> dirty_snapshot() const;

  void mark_clean(Ino ino);

  /// Drop everything -- contained reboot.
  void drop_all();

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    DiskInode inode;
    bool dirty = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Ino, Entry> map;
  };

  Shard& shard_of(Ino ino) { return shards_[ino % shards_.size()]; }
  const Shard& shard_of(Ino ino) const { return shards_[ino % shards_.size()]; }

  std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace raefs
