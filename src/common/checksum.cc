#include "common/checksum.h"

#include <array>

namespace raefs {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC32C polynomial

std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& table() {
  static const std::array<uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

uint32_t crc32c(std::span<const uint8_t> data, uint32_t seed) {
  const auto& t = table();
  uint32_t crc = ~seed;
  for (uint8_t b : data) {
    crc = (crc >> 8) ^ t[(crc ^ b) & 0xFF];
  }
  return ~crc;
}

uint32_t crc32c(const void* data, size_t len, uint32_t seed) {
  return crc32c(
      std::span<const uint8_t>(static_cast<const uint8_t*>(data), len), seed);
}

}  // namespace raefs
