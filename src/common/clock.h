// Simulated clock.
//
// Devices, filesystems and supervisors account elapsed time against a
// shared SimClock instead of wall time. Device latency models and per-op
// CPU costs advance it, so availability/downtime/recovery-time experiments
// are deterministic and independent of the host machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace raefs {

class SimClock {
 public:
  Nanos now() const { return now_.load(std::memory_order_relaxed); }

  /// Advance simulated time by `d` nanoseconds and return the new time.
  Nanos advance(Nanos d) {
    return now_.fetch_add(d, std::memory_order_relaxed) + d;
  }

 private:
  std::atomic<Nanos> now_{0};
};

using SimClockPtr = std::shared_ptr<SimClock>;

inline SimClockPtr make_clock() { return std::make_shared<SimClock>(); }

inline constexpr Nanos kMicro = 1000;
inline constexpr Nanos kMilli = 1000 * 1000;
inline constexpr Nanos kSecond = 1000ull * 1000 * 1000;

}  // namespace raefs
