#include "common/worker_pool.h"

namespace raefs {

WorkerPool::WorkerPool(uint32_t workers) : workers_(workers) {
  if (workers_ <= 1) return;
  threads_.reserve(workers_);
  for (uint32_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(uint64_t n_tasks,
                     const std::function<void(uint64_t)>& fn) {
  if (n_tasks == 0) return;
  if (threads_.empty()) {
    // Inline mode: the deterministic serial reference.
    for (uint64_t i = 0; i < n_tasks; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lk(mu_);
  fn_ = &fn;
  next_task_ = 0;
  n_tasks_ = n_tasks;
  first_error_ = nullptr;
  ++generation_;
  cv_task_.notify_all();
  cv_done_.wait(lk, [this] { return next_task_ >= n_tasks_ && active_ == 0; });
  fn_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void WorkerPool::worker_loop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_task_.wait(lk, [&] {
      return stop_ || (generation_ != seen_generation && next_task_ < n_tasks_);
    });
    if (stop_) return;
    while (next_task_ < n_tasks_) {
      uint64_t task = next_task_++;
      ++active_;
      lk.unlock();
      try {
        (*fn_)(task);
      } catch (...) {
        lk.lock();
        if (!first_error_) first_error_ = std::current_exception();
        --active_;
        continue;
      }
      lk.lock();
      --active_;
    }
    seen_generation = generation_;
    if (active_ == 0) cv_done_.notify_all();
  }
}

}  // namespace raefs
