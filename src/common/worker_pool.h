// A small blocking worker pool shared by the parallel recovery phases
// (journal replay, shadow op-sequence replay, the pFSCK-style checker).
//
// Deliberately minimal: run(n, fn) executes fn(0..n-1) across the pool's
// threads and blocks the caller until every task finished. Recovery is a
// stop-the-world event -- nothing else runs concurrently with it -- so
// there is no need for work stealing, futures, or a persistent global
// pool; each phase constructs a pool scoped to itself (thread spawn cost
// is nanoseconds against a phase that reads megabytes).
//
// Determinism contract: a pool constructed with `workers <= 1` runs every
// task inline on the calling thread, in index order. All parallel
// recovery paths are required to produce byte-identical output for any
// worker count; the inline mode is the reference they are compared
// against (and the fallback when determinism cannot be proven).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace raefs {

class WorkerPool {
 public:
  /// Spawns `workers` threads when workers > 1; otherwise no threads are
  /// created and run() executes inline.
  explicit WorkerPool(uint32_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute fn(0), fn(1), ..., fn(n_tasks - 1), distributing tasks to the
  /// pool's threads, and block until all have finished. If any task throws,
  /// the first exception (by completion order) is rethrown here after all
  /// tasks finished; the rest are dropped.
  void run(uint64_t n_tasks, const std::function<void(uint64_t)>& fn);

  uint32_t workers() const { return workers_; }

 private:
  void worker_loop();

  uint32_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  const std::function<void(uint64_t)>* fn_ = nullptr;  // current batch
  uint64_t next_task_ = 0;
  uint64_t n_tasks_ = 0;
  uint64_t active_ = 0;       // tasks currently executing
  uint64_t generation_ = 0;   // batch counter (wakes workers)
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace raefs
