// Path normalization shared by the base filesystem, the shadow filesystem
// and the VFS front end, so every implementation resolves names
// identically (a prerequisite for base/shadow equivalence, paper §3.3).
//
// Rules: paths are absolute ('/'-rooted); repeated slashes collapse;
// "." is elided; ".." pops (and is a no-op at the root, as in POSIX);
// the maximum depth after normalization is kMaxPathDepth.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace raefs {

inline constexpr size_t kMaxPathDepth = 64;

/// Split and normalize. Returns the component list (empty = the root).
inline Result<std::vector<std::string>> split_path(std::string_view path) {
  if (path.empty() || path.front() != '/') return Errno::kInval;
  std::vector<std::string> parts;
  size_t i = 1;
  while (i <= path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) j = path.size();
    std::string_view comp = path.substr(i, j - i);
    if (comp.empty() || comp == ".") {
      // skip
    } else if (comp == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.emplace_back(comp);
      if (parts.size() > kMaxPathDepth) return Errno::kNameTooLong;
    }
    i = j + 1;
  }
  return parts;
}

/// Rejoin normalized components into a canonical absolute path.
inline std::string join_path(const std::vector<std::string>& parts) {
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}

/// True if `maybe_ancestor` is a path-prefix ancestor of `path` (both
/// canonical). Used by rename to refuse moving a directory into itself.
inline bool path_is_ancestor(std::string_view maybe_ancestor,
                             std::string_view path) {
  if (maybe_ancestor == "/") return path != "/";
  return path.size() > maybe_ancestor.size() &&
         path.substr(0, maybe_ancestor.size()) == maybe_ancestor &&
         path[maybe_ancestor.size()] == '/';
}

}  // namespace raefs
