#include "common/panic.h"

#include <sstream>

namespace raefs {

namespace {

std::mutex g_panic_hook_mu;
std::function<void(const FaultSite&)> g_panic_hook;

}  // namespace

void set_panic_hook(std::function<void(const FaultSite&)> hook) {
  std::lock_guard<std::mutex> lk(g_panic_hook_mu);
  g_panic_hook = std::move(hook);
}

void fs_panic(FaultSite site) {
  std::function<void(const FaultSite&)> hook;
  {
    std::lock_guard<std::mutex> lk(g_panic_hook_mu);
    hook = g_panic_hook;
  }
  if (hook) hook(site);
  throw FsPanicError(std::move(site));
}

uint64_t WarnSink::warn(FaultSite site) {
  WarnEvent ev;
  std::function<void(const WarnEvent&)> observer;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ev.site = std::move(site);
    ev.seq = next_seq_++;
    events_.push_back(ev);
    observer = observer_;
  }
  // Invoke outside the lock: the observer (RAE supervisor) may inspect the
  // sink or trigger recovery.
  if (observer) observer(ev);
  return ev.seq;
}

uint64_t WarnSink::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::vector<WarnEvent> WarnSink::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

void WarnSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
}

void WarnSink::set_observer(std::function<void(const WarnEvent&)> cb) {
  std::lock_guard<std::mutex> lk(mu_);
  observer_ = std::move(cb);
}

namespace detail {

void shadow_check_fail(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream os;
  os << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw ShadowCheckError(os.str());
}

}  // namespace detail
}  // namespace raefs
