// Panic, WARN and invariant-check machinery.
//
// Mirrors the kernel error surface the paper studies:
//  - FsPanicError  ~ BUG()/oops: the base filesystem hit a fatal bug. The
//    RAE supervisor catches this and runs recovery; without RAE it crashes
//    the "machine" (crash-restart baseline).
//  - WarnEvent/WarnSink ~ WARN_ON(): the suggested substitute for BUG() in
//    Linux. The base continues after a WARN; the supervisor applies a
//    configurable escalation policy.
//  - ShadowCheckError: a runtime check inside the *shadow* failed. The
//    shadow is the robust alternative, so this signals either a hardware
//    fault outside the model or an unrecoverable image; it is never turned
//    into silent continuation.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace raefs {

/// Where a panic/WARN originated, for reporting and bug-id matching.
struct FaultSite {
  std::string function;  // e.g. "BaseFs::write"
  std::string detail;    // human-readable message
  int bug_id = -1;       // injected-bug id, or -1 for organic invariant trap
};

/// Fatal error inside the base filesystem (kernel BUG() analogue).
class FsPanicError : public std::runtime_error {
 public:
  explicit FsPanicError(FaultSite site)
      : std::runtime_error("fs panic in " + site.function + ": " + site.detail),
        site_(std::move(site)) {}

  const FaultSite& site() const { return site_; }

 private:
  FaultSite site_;
};

/// A runtime check inside the shadow filesystem failed.
class ShadowCheckError : public std::runtime_error {
 public:
  explicit ShadowCheckError(std::string what_arg)
      : std::runtime_error("shadow check failed: " + std::move(what_arg)) {}
};

/// Raise a base-filesystem panic. Marked noreturn so control flow after a
/// detected fatal bug is explicit.
[[noreturn]] void fs_panic(FaultSite site);

/// Observer invoked synchronously inside fs_panic, before the exception is
/// thrown -- while the faulting state is still live. Used by the obs flight
/// recorder to dump its ring at the moment of detection. At most one hook;
/// it must not throw.
void set_panic_hook(std::function<void(const FaultSite&)> hook);

/// One WARN_ON()-style event emitted by the base.
struct WarnEvent {
  FaultSite site;
  uint64_t seq = 0;  // assigned by the sink, monotonic
};

/// Collects WARN events from one base-filesystem instance. Thread-safe.
/// The RAE supervisor inspects the sink to apply its escalation policy.
class WarnSink {
 public:
  /// Record a WARN; returns its sequence number.
  uint64_t warn(FaultSite site);

  /// Number of WARNs recorded so far.
  uint64_t count() const;

  /// Copy of all recorded events (test/diagnostic use).
  std::vector<WarnEvent> events() const;

  /// Drop all recorded events (after a contained reboot).
  void clear();

  /// Optional observer invoked synchronously on each WARN (supervisor hook).
  void set_observer(std::function<void(const WarnEvent&)> cb);

 private:
  mutable std::mutex mu_;
  std::vector<WarnEvent> events_;
  uint64_t next_seq_ = 1;
  std::function<void(const WarnEvent&)> observer_;
};

namespace detail {
[[noreturn]] void shadow_check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg);
}

/// Extensive runtime check used throughout the shadow filesystem. Always
/// enabled (the shadow has no performance budget to protect); failure
/// throws ShadowCheckError.
#define SHADOW_CHECK(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::raefs::detail::shadow_check_fail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)

/// Invariant trap in the base filesystem: the organic analogue of BUG_ON.
#define BASE_BUG_ON(cond, func, msg)                                  \
  do {                                                                \
    if (cond) {                                                       \
      ::raefs::fs_panic(::raefs::FaultSite{(func), (msg), -1});       \
    }                                                                 \
  } while (0)

}  // namespace raefs
