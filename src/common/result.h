// Result<T>: a lightweight expected-like type carrying either a value or an
// Errno. Filesystem APIs return Result so that POSIX-visible errors flow as
// values while bugs/panics flow as exceptions (common/panic.h).
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/err.h"

namespace raefs {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets `return value;` and `return Errno::kNoEnt;`
  // both work at call sites.
  Result(T value) : value_(std::move(value)), err_(Errno::kOk) {}
  Result(Errno e) : err_(e) { assert(e != Errno::kOk); }

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }

  /// The error code; Errno::kOk iff ok().
  Errno error() const { return err_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Errno err_;
};

/// Result<void>: success/failure with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : err_(Errno::kOk) {}
  Result(Errno e) : err_(e) {}

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

  static Result Ok() { return Result(); }

 private:
  Errno err_;
};

using Status = Result<void>;

/// Propagate an error from an expression returning Result<T>.
/// Usage: RAEFS_TRY(auto ino, fs.lookup(path));
#define RAEFS_TRY(decl, expr)                      \
  decl = ({                                        \
    auto raefs_try_tmp_ = (expr);                  \
    if (!raefs_try_tmp_.ok()) return raefs_try_tmp_.error(); \
    std::move(raefs_try_tmp_).value();             \
  })

/// Propagate an error from a Status-returning expression.
#define RAEFS_TRY_VOID(expr)                       \
  do {                                             \
    auto raefs_try_tmp_ = (expr);                  \
    if (!raefs_try_tmp_.ok()) return raefs_try_tmp_.error(); \
  } while (0)

}  // namespace raefs
