#include "common/serial.h"

#include <cstdio>

namespace raefs {

std::string hexdump(std::span<const uint8_t> data, size_t max_bytes) {
  std::string out;
  size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char line[80];
  for (size_t off = 0; off < n; off += 16) {
    int len = std::snprintf(line, sizeof(line), "%08zx  ", off);
    out.append(line, static_cast<size_t>(len));
    for (size_t i = 0; i < 16; ++i) {
      if (off + i < n) {
        len = std::snprintf(line, sizeof(line), "%02x ", data[off + i]);
        out.append(line, static_cast<size_t>(len));
      } else {
        out += "   ";
      }
    }
    out += " |";
    for (size_t i = 0; i < 16 && off + i < n; ++i) {
      uint8_t c = data[off + i];
      out += (c >= 32 && c < 127) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  if (n < data.size()) out += "... (truncated)\n";
  return out;
}

}  // namespace raefs
