// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in raefs (workload generation, probabilistic
// fault injection, property tests) flows through Rng seeded explicitly, so
// every experiment and test is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cassert>

namespace raefs {

/// SplitMix64 — used to expand a user seed into generator state.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EEDF00Dull) {
    uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace raefs
