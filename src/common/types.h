// Core scalar types shared across every raefs module.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

namespace raefs {

/// Logical block number on a block device (block-size units).
using BlockNo = uint64_t;

/// Inode number. 0 is invalid; the root directory is always kRootIno.
using Ino = uint64_t;

/// File descriptor handle issued by the VFS layer. Negative values invalid.
using Fd = int64_t;

/// Byte offset / byte count within a file.
using FileOff = uint64_t;

/// Monotonic sequence number for recorded operations and journal txns.
using Seq = uint64_t;

/// Simulated time in nanoseconds (see common/clock.h).
using Nanos = uint64_t;

/// One block's payload. Shared-ownership handles to immutable buffers are
/// the currency of the zero-copy data path: the block cache hands them to
/// readers and to the commit pipeline, and clones only on a shared write
/// (copy-on-write).
using BlockBuf = std::vector<uint8_t>;
using BlockBufPtr = std::shared_ptr<const BlockBuf>;

inline constexpr uint32_t kBlockSize = 4096;
inline constexpr Ino kInvalidIno = 0;
inline constexpr Ino kRootIno = 1;
inline constexpr Fd kInvalidFd = -1;

/// Type of an on-disk object.
enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

const char* to_string(FileType t);

inline const char* to_string(FileType t) {
  switch (t) {
    case FileType::kNone: return "none";
    case FileType::kRegular: return "regular";
    case FileType::kDirectory: return "directory";
    case FileType::kSymlink: return "symlink";
  }
  return "?";
}

}  // namespace raefs
