// Minimal leveled logger. Quiet by default so tests and benchmarks stay
// readable; raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace raefs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (already formatted) at `level`.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
struct LogMessage {
  LogMessage(LogLevel level, const char* tag) : level_(level) {
    os_ << "[" << tag << "] ";
  }
  ~LogMessage() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define RAEFS_LOG(level, tag)                            \
  if (static_cast<int>(::raefs::log_level()) <           \
      static_cast<int>(level)) {                         \
  } else                                                 \
    ::raefs::detail::LogMessage(level, tag).stream()

#define RAEFS_LOG_ERROR(tag) RAEFS_LOG(::raefs::LogLevel::kError, tag)
#define RAEFS_LOG_WARN(tag) RAEFS_LOG(::raefs::LogLevel::kWarn, tag)
#define RAEFS_LOG_INFO(tag) RAEFS_LOG(::raefs::LogLevel::kInfo, tag)
#define RAEFS_LOG_DEBUG(tag) RAEFS_LOG(::raefs::LogLevel::kDebug, tag)

}  // namespace raefs
