// Minimal leveled logger. Quiet by default so tests and benchmarks stay
// readable; raise the level for debugging.
//
// Each line is assembled in full -- "<timestamp> T<tid> LEVEL [tag] msg" --
// before a single serialized emission, so concurrent writers can never
// interleave fragments. The timestamp is simulated time (set_log_clock);
// "-" when no clock is attached. The thread id is a small sequential
// number assigned per logging thread, stable for the thread's lifetime.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace raefs {

class SimClock;

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Attach the simulated clock whose now() stamps every line (nullptr to
/// detach). The clock must outlive logging.
void set_log_clock(const SimClock* clock);

/// Redirect fully formatted lines to `sink` instead of stderr (tests);
/// nullptr restores stderr. Invoked under the emission lock.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// Emit one log line. `msg` is the "[tag] body" payload; the timestamp,
/// thread id and level prefix are added here, and the complete line is
/// written in one serialized operation.
void log_line(LogLevel level, const std::string& msg);

/// The small sequential per-thread id printed as `T<tid>` in log lines.
/// Trace spans stamp the same id, so a span's `tid` cross-references the
/// log stream directly during incident forensics.
int this_thread_log_id();

namespace detail {
struct LogMessage {
  LogMessage(LogLevel level, const char* tag) : level_(level) {
    os_ << "[" << tag << "] ";
  }
  ~LogMessage() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define RAEFS_LOG(level, tag)                            \
  if (static_cast<int>(::raefs::log_level()) <           \
      static_cast<int>(level)) {                         \
  } else                                                 \
    ::raefs::detail::LogMessage(level, tag).stream()

#define RAEFS_LOG_ERROR(tag) RAEFS_LOG(::raefs::LogLevel::kError, tag)
#define RAEFS_LOG_WARN(tag) RAEFS_LOG(::raefs::LogLevel::kWarn, tag)
#define RAEFS_LOG_INFO(tag) RAEFS_LOG(::raefs::LogLevel::kInfo, tag)
#define RAEFS_LOG_DEBUG(tag) RAEFS_LOG(::raefs::LogLevel::kDebug, tag)

}  // namespace raefs
