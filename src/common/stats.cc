#include "common/stats.h"

#include <algorithm>

#include "common/clock.h"
#include <bit>
#include <cstdio>
#include <sstream>

namespace raefs {

int LatencyHistogram::bucket_of(Nanos v) {
  if (v == 0) return 0;
  int b = 64 - std::countl_zero(static_cast<uint64_t>(v));
  return std::min(b, kBuckets - 1);
}

Nanos LatencyHistogram::bucket_upper(int b) {
  if (b >= 63) return ~Nanos{0};
  return (Nanos{1} << b) - 1;
}

void LatencyHistogram::record(Nanos v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Nanos LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << format_nanos(static_cast<Nanos>(mean()))
     << " p50=" << format_nanos(quantile(0.5))
     << " p90=" << format_nanos(quantile(0.9))
     << " p99=" << format_nanos(quantile(0.99))
     << " max=" << format_nanos(max());
  return os.str();
}

double AvailabilityTracker::availability() const {
  Nanos total = up_ + down_;
  if (total == 0) return 1.0;
  return static_cast<double>(up_) / static_cast<double>(total);
}

uint64_t CounterSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string CounterSet::summary() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << "=" << v << " ";
  return os.str();
}

std::string format_nanos(Nanos v) {
  char buf[48];
  if (v < 10 * kMicro) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(v));
  } else if (v < 10 * kMilli) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(v) / static_cast<double>(kMicro));
  } else if (v < 10 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(v) / static_cast<double>(kMilli));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(v) / static_cast<double>(kSecond));
  }
  return buf;
}

}  // namespace raefs
