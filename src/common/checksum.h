// CRC32C (Castagnoli) used to protect every on-disk structure.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace raefs {

/// Compute CRC32C over a byte range, continuing from `seed` (pass 0 to
/// start a fresh checksum). Software slice-by-1 table implementation;
/// correctness over speed, matching the reproduction's priorities.
uint32_t crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

/// Convenience overload for raw buffers.
uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace raefs
