// Little-endian wire/disk serialization helpers.
//
// Every on-disk structure and every byte crossing the base<->shadow
// interface is encoded with these, so formats are explicit and
// platform-independent (paper §4.1 laments the lack of an explicit ABI for
// kernel filesystems; ours is nailed down here).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace raefs {

/// Appends little-endian encoded fields to a byte vector.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void put_u8(uint8_t v) { out_->push_back(v); }
  void put_u16(uint16_t v) { put_le(v); }
  void put_u32(uint32_t v) { put_le(v); }
  void put_u64(uint64_t v) { put_le(v); }
  void put_i64(int64_t v) { put_le(static_cast<uint64_t>(v)); }

  void put_bytes(std::span<const uint8_t> b) {
    out_->insert(out_->end(), b.begin(), b.end());
  }

  /// Length-prefixed (u32) string.
  void put_string(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  /// Fixed-width field: copies up to `width` bytes, zero-pads the rest.
  void put_fixed(std::string_view s, size_t width) {
    size_t n = s.size() < width ? s.size() : width;
    out_->insert(out_->end(), s.begin(), s.begin() + n);
    out_->insert(out_->end(), width - n, 0);
  }

  size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t>* out_;
};

/// Reads little-endian encoded fields from a byte span. Under-runs are
/// reported via ok() going false (all subsequent reads return zeroes) so
/// callers validate once after decoding a whole structure.
class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> in) : in_(in) {}

  uint8_t get_u8() { return get_le<uint8_t>(); }
  uint16_t get_u16() { return get_le<uint16_t>(); }
  uint32_t get_u32() { return get_le<uint32_t>(); }
  uint64_t get_u64() { return get_le<uint64_t>(); }
  int64_t get_i64() { return static_cast<int64_t>(get_le<uint64_t>()); }

  std::vector<uint8_t> get_bytes(size_t n) {
    if (!take(n)) return {};
    std::vector<uint8_t> out(in_.begin() + static_cast<ptrdiff_t>(pos_ - n),
                             in_.begin() + static_cast<ptrdiff_t>(pos_));
    return out;
  }

  std::string get_string() {
    uint32_t n = get_u32();
    if (!take(n)) return {};
    return std::string(
        reinterpret_cast<const char*>(in_.data()) + (pos_ - n), n);
  }

  /// Fixed-width field; trailing zero bytes are stripped.
  std::string get_fixed(size_t width) {
    if (!take(width)) return {};
    const char* p = reinterpret_cast<const char*>(in_.data()) + (pos_ - width);
    size_t n = width;
    while (n > 0 && p[n - 1] == 0) --n;
    return std::string(p, n);
  }

  void skip(size_t n) { take(n); }

  bool ok() const { return ok_; }
  size_t remaining() const { return in_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  T get_le() {
    if (!take(sizeof(T))) return T{};
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(in_[pos_ - sizeof(T) + i]) << (8 * i)));
    }
    return v;
  }

  bool take(size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const uint8_t> in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Render bytes as a hexdump (diagnostics, discrepancy reports).
std::string hexdump(std::span<const uint8_t> data, size_t max_bytes = 256);

}  // namespace raefs
