#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/clock.h"
#include "common/stats.h"

namespace raefs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
std::atomic<const SimClock*> g_clock{nullptr};
std::mutex g_io_mu;
std::function<void(LogLevel, const std::string&)> g_sink;  // under g_io_mu

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

}  // namespace

// Small sequential per-thread id: stable, readable, and free of the
// platform-sized opaque values std::this_thread::get_id() prints.
int this_thread_log_id() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_clock(const SimClock* clock) { g_clock.store(clock); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lk(g_io_mu);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load()) return;
  // Assemble the complete line before taking the lock; emission is then a
  // single serialized write, so concurrent writers cannot interleave.
  std::string line;
  const SimClock* clock = g_clock.load();
  line += clock != nullptr ? format_nanos(clock->now()) : "-";
  line += " T";
  line += std::to_string(this_thread_log_id());
  line += " ";
  line += level_tag(level);
  line += " ";
  line += msg;
  std::lock_guard<std::mutex> lk(g_io_mu);
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace raefs
