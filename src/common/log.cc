#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace raefs {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
std::mutex g_io_mu;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load()) return;
  std::lock_guard<std::mutex> lk(g_io_mu);
  std::fprintf(stderr, "%s\n", msg.c_str());
}

}  // namespace raefs
