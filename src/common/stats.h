// Counters, latency histograms and availability accounting used by the
// benchmark harness and the RAE supervisor's statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace raefs {

/// Log-bucketed latency histogram over simulated nanoseconds.
class LatencyHistogram {
 public:
  void record(Nanos v);

  uint64_t count() const { return count_; }
  Nanos min() const { return count_ ? min_ : 0; }
  Nanos max() const { return max_; }
  /// Exact running sum of recorded values (exporters must use this, not
  /// mean()*count(): the round trip through double drops low bits once
  /// the sum passes 2^53).
  Nanos sum() const { return sum_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Approximate quantile (q in [0,1]) from the log buckets.
  Nanos quantile(double q) const;

  /// Bucket-wise accumulate `other` into this histogram.
  void merge(const LatencyHistogram& other);

  std::string summary() const;

 private:
  static int bucket_of(Nanos v);
  static Nanos bucket_upper(int b);

  static constexpr int kBuckets = 64;
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  Nanos min_ = ~Nanos{0};
  Nanos max_ = 0;
};

/// Up/down time accounting for availability experiments.
///
/// A component is "up" when it is able to admit application operations.
/// Recovery (contained reboot + shadow replay + hand-off) and full machine
/// restarts count as downtime.
class AvailabilityTracker {
 public:
  void record_up(Nanos d) { up_ += d; }
  void record_down(Nanos d) {
    down_ += d;
    ++outages_;
  }

  Nanos up_time() const { return up_; }
  Nanos down_time() const { return down_; }
  uint64_t outages() const { return outages_; }

  /// Fraction of total time spent up, in [0,1]; 1.0 when no time recorded.
  double availability() const;

 private:
  Nanos up_ = 0;
  Nanos down_ = 0;
  uint64_t outages_ = 0;
};

/// Named counters for experiment reporting.
class CounterSet {
 public:
  void add(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }
  uint64_t get(const std::string& name) const;
  const std::map<std::string, uint64_t>& all() const { return counters_; }
  std::string summary() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

/// Format simulated nanoseconds human-readably ("12.3ms").
std::string format_nanos(Nanos v);

}  // namespace raefs
