// Errno-style error codes returned by filesystem operations.
//
// These model the POSIX error surface that applications observe. Bugs and
// panics are NOT represented here -- a triggered bug raises FsPanicError
// (see common/panic.h) and is handled by the RAE supervisor, never shown
// to applications as an error code.
#pragma once

#include <cstdint>

namespace raefs {

enum class Errno : int32_t {
  kOk = 0,
  kNoEnt,        // no such file or directory
  kExist,        // file exists
  kNotDir,       // path component is not a directory
  kIsDir,        // operation not valid on a directory
  kNotEmpty,     // directory not empty
  kNoSpace,      // out of data blocks or inodes
  kNameTooLong,  // component exceeds kMaxNameLen
  kInval,        // invalid argument
  kBadFd,        // bad file descriptor
  kFBig,         // file would exceed maximum size
  kIo,           // device-level IO error
  kRoFs,         // filesystem (or device view) is read-only
  kMLink,        // too many hard links
  kBusy,         // resource busy (e.g. unmount with open files)
  kCorrupt,      // on-disk structure failed validation
  kNotSup,       // operation not supported by this implementation
  kLoop,         // too many levels of symbolic links
};

inline const char* to_string(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kNoEnt: return "ENOENT";
    case Errno::kExist: return "EEXIST";
    case Errno::kNotDir: return "ENOTDIR";
    case Errno::kIsDir: return "EISDIR";
    case Errno::kNotEmpty: return "ENOTEMPTY";
    case Errno::kNoSpace: return "ENOSPC";
    case Errno::kNameTooLong: return "ENAMETOOLONG";
    case Errno::kInval: return "EINVAL";
    case Errno::kBadFd: return "EBADF";
    case Errno::kFBig: return "EFBIG";
    case Errno::kIo: return "EIO";
    case Errno::kRoFs: return "EROFS";
    case Errno::kMLink: return "EMLINK";
    case Errno::kBusy: return "EBUSY";
    case Errno::kCorrupt: return "ECORRUPT";
    case Errno::kNotSup: return "ENOTSUP";
    case Errno::kLoop: return "ELOOP";
  }
  return "E?";
}

}  // namespace raefs
