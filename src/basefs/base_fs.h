// BaseFs -- the performance-oriented base filesystem (Figure 2, left).
//
// Everything the paper's shadow deliberately omits is here: a sharded
// write-back block cache, an inode cache, a dentry cache with negative
// entries, fine-grained locking (shared namespace lock + per-inode locks),
// a write-ahead metadata journal, and an asynchronous block layer for
// write-back. It is also where bugs live: BugRegistry injection sites are
// wired through every code path, organic invariant traps panic like a
// kernel BUG(), and a validate-on-sync hook detects silent corruption
// before it persists (paper §3.1).
//
// Concurrency model:
//   - op_gate_ (shared_mutex): every op holds it shared; the commit
//     engine takes it exclusive only for the brief *epoch rotation*
//     barrier (flush the inode cache, snapshot the epoch's dirty delta,
//     advance the open epoch) -- no IO happens under the gate. All
//     journal and device work runs outside it, concurrently with new
//     operations dirtying the next epoch.
//   - commit_mu_/commit_cv_: the group-commit engine. fsync/sync joins
//     the open epoch and waits for *that epoch's* durability; concurrent
//     fsyncs collapse into one pipelined journal transaction (one thread
//     becomes the committer, the rest wait on the cv). Transactions for
//     epoch E+1 may stage while epoch E's commit record is in flight
//     (journal pipelining); checkpointing runs off the commit critical
//     path, after waiters are already released.
//   - namespace_mu_ (shared_mutex): path resolution shared, namespace
//     mutations (create/unlink/mkdir/rmdir/rename/link/symlink) exclusive.
//   - per-inode shared_mutex (LockTable): file data ops.
//   - alloc_mu_: inode/block allocators.
// Lock order: op_gate_ -> namespace_mu_ -> inode lock -> alloc_mu_.
// commit_mu_ is never held while acquiring op_gate_ or a shard lock is
// held; journal/async callbacks acquire commit_mu_ alone.
//
// POSIX divergences (shared by base, shadow, and the test oracle):
//   - symlinks are never followed during path walks (lookup == lstat);
//   - unlink frees the inode immediately even if a descriptor is open;
//     stale descriptors are detected via inode generations (kBadFd);
//   - atime is not updated on reads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/async_device.h"
#include "blockdev/block_device.h"
#include "cache/block_cache.h"
#include "cache/dentry_cache.h"
#include "cache/inode_cache.h"
#include "common/clock.h"
#include "common/panic.h"
#include "common/result.h"
#include "common/stats.h"
#include "faults/bug_registry.h"
#include "format/bitmap.h"
#include "format/dirent.h"
#include "format/inode.h"
#include "format/superblock.h"
#include "journal/journal.h"
#include "obs/metrics.h"
#include "oplog/op.h"

namespace raefs {

struct MkfsOptions {
  uint64_t total_blocks = 4096;
  uint64_t inode_count = 1024;
  uint64_t journal_blocks = 128;
};

struct BaseFsOptions {
  size_t block_cache_blocks = 1024;
  size_t dentry_cache_entries = 4096;
  int cache_shards = 8;
  int async_workers = 2;
  bool use_dentry_cache = true;
  bool use_inode_cache = true;
  /// Detection enhancement (paper §3.1): structurally validate all dirty
  /// metadata before it can persist; a failure panics (and is then
  /// recoverable by RAE from the unpersisted-state log).
  bool validate_on_sync = true;
  /// Checkpoint (write journaled metadata in place) when the journal is
  /// fuller than this after a commit.
  double checkpoint_fill_threshold = 0.5;
  /// Simulated CPU cost charged per operation.
  Nanos op_cpu_cost = 300;
  /// Worker threads for the bulk install's parallel in-place apply
  /// (install_blocks, the recovery download). 0 = auto: derive from the
  /// device's probed effective queue depth (blockdev/qdepth_probe.h).
  uint32_t install_workers = 1;
};

struct StatResult {
  Ino ino = kInvalidIno;
  FileType type = FileType::kNone;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint16_t mode = 0;
  uint64_t generation = 0;
};

struct BaseFsStats {
  uint64_t ops = 0;
  uint64_t commits = 0;
  uint64_t checkpoints = 0;
  uint64_t journal_replays_at_mount = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_cow_clones = 0;
  uint64_t block_cache_bytes_copied = 0;
  uint64_t dentry_hits = 0;
  uint64_t dentry_misses = 0;
  uint64_t inode_cache_hits = 0;
  uint64_t inode_cache_misses = 0;
  uint64_t extent_walks = 0;
  uint64_t extent_hint_hits = 0;

  /// The cache-efficiency counters as a named CounterSet for experiment
  /// reporting (CLI, benches).
  CounterSet to_counters() const;
};

/// Classification of a data-region block's role. Blocks below data_start
/// (superblock, bitmaps, inode table, journal) are implicitly metadata;
/// data-region blocks holding directory entries or indirect pointer arrays
/// are journaled metadata too, while file content is not journaled
/// (ordered-mode semantics).
enum class BlockClass : uint8_t {
  kFileData = 0,
  kDirMeta = 1,
  kIndirectMeta = 2,
};

/// Blocks handed back by the shadow during metadata download.
struct InstallBlock {
  BlockNo block = 0;
  BlockClass cls = BlockClass::kFileData;
  std::vector<uint8_t> data;
};

class BaseFs {
 public:
  /// Format `dev` with a fresh empty filesystem.
  static Status mkfs(BlockDevice* dev, const MkfsOptions& opts);

  /// Mount: validates the superblock, replays the journal if the previous
  /// mount did not unmount cleanly, marks the filesystem mounted.
  /// `bugs` and `warns` may be null (no injection / WARNs dropped).
  static Result<std::unique_ptr<BaseFs>> mount(BlockDevice* dev,
                                               const BaseFsOptions& opts,
                                               SimClockPtr clock = nullptr,
                                               BugRegistry* bugs = nullptr,
                                               WarnSink* warns = nullptr);

  /// Commit, checkpoint, mark the superblock clean. The object is
  /// unusable afterwards.
  Status unmount();

  /// Destructor performs NO write-back: a destroyed-without-unmount BaseFs
  /// models a crashed/contained-rebooted instance whose in-memory state
  /// is discarded (paper: all base memory is untrusted after an error).
  ~BaseFs();

  BaseFs(const BaseFs&) = delete;
  BaseFs& operator=(const BaseFs&) = delete;

  // --- Namespace operations (absolute '/'-separated paths) -------------
  Result<Ino> lookup(std::string_view path);
  Result<Ino> create(std::string_view path, uint16_t mode);
  Result<Ino> mkdir(std::string_view path, uint16_t mode);
  Status unlink(std::string_view path);
  Status rmdir(std::string_view path);
  Status rename(std::string_view src, std::string_view dst);
  Status link(std::string_view existing, std::string_view newpath);
  Result<Ino> symlink(std::string_view linkpath, std::string_view target);
  Result<std::string> readlink(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path);
  Result<StatResult> stat(std::string_view path);
  Result<StatResult> stat_ino(Ino ino);

  // --- Data operations (fd style: inode + generation guard) ------------
  Result<std::vector<uint8_t>> read(Ino ino, uint64_t gen, FileOff off,
                                    uint64_t len);
  Result<uint64_t> write(Ino ino, uint64_t gen, FileOff off,
                         std::span<const uint8_t> data);
  Status truncate(Ino ino, uint64_t gen, uint64_t new_size);
  Status fsync(Ino ino);
  Status sync();

  // --- RAE integration --------------------------------------------------
  /// Tag the next operation with its op-log sequence number (called by the
  /// supervisor, which serializes mutating ops). The durable callback
  /// reports the highest tagged seq whose effects have become durable.
  void set_current_op_seq(Seq seq) { current_op_seq_.store(seq); }
  void set_durable_callback(std::function<void(Seq)> cb) {
    durable_cb_ = std::move(cb);
  }

  /// Metadata download (paper §3.2 hand-off): durably install the
  /// shadow's output blocks. The bulk path journals the whole set as ONE
  /// multi-chunk install transaction (atomic under power cuts: replay
  /// yields either the pre-install or the fully-installed image), then
  /// fans the in-place writes across a worker pool sized by
  /// BaseFsOptions::install_workers and checkpoints. Falls back to the
  /// legacy cache-dirty + commit path when the set does not fit the
  /// journal region.
  Status install_blocks(const std::vector<InstallBlock>& blocks);

  // --- Introspection ----------------------------------------------------
  BaseFsStats stats() const;
  uint64_t free_blocks() const { return free_blocks_.load(); }
  uint64_t free_inodes() const { return free_inodes_.load(); }
  const Geometry& geometry() const { return geo_; }

 private:
  BaseFs(BlockDevice* dev, const BaseFsOptions& opts, SimClockPtr clock,
         BugRegistry* bugs, WarnSink* warns, const Superblock& sb,
         const Geometry& geo);

  // -- bug-injection plumbing -------------------------------------------
  /// Evaluate the registry at `site`; Crash bugs panic, Warn bugs hit the
  /// sink, Corrupt bugs run `corrupt` (if provided).
  void bug_site(std::string_view site, OpKind op, std::string_view path,
                Ino ino, FileOff offset, uint64_t len,
                const std::function<void()>& corrupt = {});
  void charge_op();

  // -- inode helpers (base_fs.cc / base_io.cc) ---------------------------
  Result<DiskInode> get_inode(Ino ino);
  void put_inode(Ino ino, const DiskInode& inode);
  Status flush_inode_cache_locked();
  std::shared_mutex& inode_lock(Ino ino);

  // -- allocators ---------------------------------------------------------
  Result<Ino> alloc_inode(FileType type, uint16_t mode);
  Status free_inode(Ino ino);
  Result<BlockNo> alloc_block();
  Status free_block(BlockNo block);
  Status bitmap_set(BlockNo bitmap_start, uint64_t index, bool value,
                    const char* what);
  Result<bool> bitmap_test(BlockNo bitmap_start, uint64_t index);

  // -- block mapping (base_io.cc) ----------------------------------------
  /// A run of contiguous file blocks mapped to contiguous disk blocks.
  /// disk_block == 0 marks a hole run (unmapped blocks read as zeros).
  struct Extent {
    uint64_t file_block = 0;
    BlockNo disk_block = 0;
    uint64_t len = 0;  // in blocks
  };

  /// Map file block -> device block; allocates (and zeroes) missing blocks
  /// when `alloc`. Returns 0 for unmapped holes when !alloc.
  Result<BlockNo> map_block(DiskInode* inode, uint64_t file_block, bool alloc);

  /// Batched, non-allocating mapping walk: yields the extents covering
  /// [first_fb, first_fb + count) with ONE pass over the direct /
  /// indirect / double-indirect pointers (each pointer block is read at
  /// most once, vs once per file block for repeated map_block calls).
  /// Serves fully-mapped ranges from the per-inode extent hint when the
  /// hint is still valid (no note_mutation() since it was recorded).
  Result<std::vector<Extent>> map_range(Ino ino, const DiskInode& inode,
                                        uint64_t first_fb, uint64_t count);
  Status free_file_blocks(DiskInode* inode, uint64_t keep_blocks);

  // -- path resolution (base_ops.cc) --------------------------------------
  Result<Ino> resolve(std::string_view path);
  struct ParentRef {
    Ino parent = kInvalidIno;
    std::string leaf;
  };
  Result<ParentRef> resolve_parent(std::string_view path);
  Result<std::optional<DirEntry>> dir_find(Ino dir_ino, const DiskInode& dir,
                                           std::string_view name);
  Status dir_insert(Ino dir_ino, DiskInode* dir, const DirEntry& entry,
                    std::string_view full_path);
  Status dir_remove(Ino dir_ino, DiskInode* dir, std::string_view name);
  Result<bool> dir_empty(const DiskInode& dir);
  Result<Ino> create_common(OpKind op, std::string_view path, uint16_t mode,
                            FileType type, std::string_view symlink_target);

  // -- transactions (base_txn.cc) -----------------------------------------
  /// Everything a staged epoch needs to become durable: its bounds, the
  /// op-log watermark it covers, and the partitioned dirty delta (shared
  /// block handles -- no copies). Defined in base_txn.cc.
  struct CommitCtx;

  /// Group commit: waits until every epoch <= the currently open epoch is
  /// durable (equivalent to commit_upto(epoch_open_, force_checkpoint)).
  Status commit_txn(bool force_checkpoint);
  /// Waits until epochs <= target_epoch are durable, becoming the
  /// committer (staging a pipelined journal transaction for the delta) if
  /// no staged transaction covers the target yet.
  Status commit_upto(uint64_t target_epoch, bool force_checkpoint);
  /// One committer cycle: recover a broken pipeline if needed, rotate the
  /// open epoch under op_gate_, stage the delta into the journal pipeline.
  /// Entered and exited with `lk` (commit_mu_) held and committer_busy_
  /// set by the caller; unlocks internally around IO. Retries internally
  /// when the journal refuses with kBusy (a concurrent staged-transaction
  /// failure): that is transient engine state, never a caller-visible
  /// error.
  Status commit_cycle_locked(std::unique_lock<std::mutex>& lk);
  Status commit_cycle_once_(std::unique_lock<std::mutex>& lk);
  /// Serial fallback for oversized / journal-exhausted deltas: drains the
  /// pipeline, then chunked synchronous commits with checkpoints between.
  Status commit_bulk_(std::unique_lock<std::mutex>& lk,
                      const std::shared_ptr<CommitCtx>& ctx);
  /// Completion callback bound into the journal pipeline for `ctx`.
  Journal::CommitDoneCb make_commit_done_(std::shared_ptr<CommitCtx> ctx);
  /// Checkpoint entry point used after a commit (off the critical path):
  /// acquires committer exclusivity, waits for the pipeline to idle.
  Status checkpoint_now_locked(std::unique_lock<std::mutex>& lk, bool force);
  /// Writes the shadow copies of journaled blocks in place and truncates
  /// the journal. Pipeline must be idle and the async queue drained;
  /// commit_mu_ must NOT be held.
  Status checkpoint_core_();
  Status validate_dirty_locked(
      const std::vector<std::pair<BlockNo, BlockBufPtr>>& dirty);
  /// Submit `blocks` to the async layer as coalesced contiguous-run
  /// writes; `on_each` fires once per run completion.
  void submit_writeback_runs(std::vector<std::pair<BlockNo, BlockBufPtr>> blocks,
                             const std::function<void(Status)>& on_each);
  /// submit_writeback_runs + drain (synchronous write-back).
  Status writeback_coalesced(
      const std::vector<std::pair<BlockNo, BlockBufPtr>>& blocks);
  Status write_superblock(FsState state);

  bool is_meta_block(BlockNo b) const;
  void note_meta_block(BlockNo b, BlockClass cls);
  /// Take (and clear) the pending revoke set, sorted for deterministic
  /// on-disk descriptors. Called inside the epoch rotation gate.
  std::vector<BlockNo> take_pending_revokes_();
  /// Put revokes back after a failed or revoke-less commit attempt so the
  /// next staged transaction carries them. Blocks reallocated as metadata
  /// in the meantime are dropped (their fresh copy must replay).
  void return_pending_revokes_(const std::vector<BlockNo>& revokes);
  void note_mutation();
  Status reload_counters();
  /// The two halves of reload_counters, so the bulk install can rescan
  /// only the bitmap class it actually touched.
  Status reload_free_blocks_();
  Status reload_free_inodes_();

  // -- metadata download (base_txn.cc) ------------------------------------
  /// Structural validation of one shadow-produced block (bulk path's
  /// analogue of validate_dirty_locked; no bitmap-counter cross-check).
  Status validate_install_block_(const InstallBlock& ib) const;
  /// Legacy install path: dirty the blocks through the cache and group-
  /// commit. Used when the install set does not fit the journal region.
  Status install_blocks_legacy_(const std::vector<InstallBlock>& blocks);
  /// Record every data-region metadata block in `blocks` under ONE
  /// meta_blocks_mu_ acquisition (the bulk install's batched
  /// note_meta_block).
  void note_meta_blocks_batch_(const std::vector<InstallBlock>& blocks);
  /// Invalidate only the derived state the installed set can affect:
  /// free-block counter iff block-bitmap blocks were installed, free-inode
  /// counter iff inode-bitmap blocks, inode cache iff inode-table blocks,
  /// dentry cache iff inode-table or directory-metadata blocks.
  Status invalidate_for_install_(const std::vector<InstallBlock>& blocks);

  // -- members -------------------------------------------------------------
  BlockDevice* dev_;
  BaseFsOptions opts_;
  SimClockPtr clock_;
  BugRegistry* bugs_;    // may be null
  WarnSink* warns_;      // may be null
  Superblock sb_;
  Geometry geo_;

  BlockCache block_cache_;
  InodeCache inode_cache_;
  DentryCache dentry_cache_;
  AsyncBlockDevice async_;
  Journal journal_;

  std::shared_mutex op_gate_;
  std::shared_mutex namespace_mu_;
  std::mutex alloc_mu_;
  std::mutex inode_locks_mu_;
  std::unordered_map<Ino, std::unique_ptr<std::shared_mutex>> inode_locks_;

  // Blocks in the data region that hold directory/indirect (journaled)
  // content rather than file data.
  mutable std::mutex meta_blocks_mu_;
  std::unordered_map<BlockNo, BlockClass> meta_blocks_;
  // Journaled-metadata blocks freed since the last epoch rotation. The
  // next journal transaction carries them as revoke records so crash
  // replay cannot resurrect their stale journaled copies over blocks
  // reallocated as file data (see journal.h). note_meta_block cancels a
  // pending revoke (the block is metadata again and its fresh copy will
  // be journaled); the commit path drops revokes for blocks re-journaled
  // by the same transaction.
  std::unordered_set<BlockNo> pending_revokes_;

  // Per-inode extent hint: the last mapped run map_range() saw, tagged
  // with the mutation epoch it was recorded under. note_mutation() bumps
  // the epoch, which invalidates every hint at once (conservative: any
  // metadata mutation anywhere kills all hints, so a hint can never serve
  // a stale mapping).
  struct ExtentHint {
    Extent ext;
    uint64_t epoch = 0;
  };
  mutable std::mutex extent_hint_mu_;
  std::unordered_map<Ino, ExtentHint> extent_hints_;
  std::atomic<uint64_t> mutation_epoch_{0};
  std::atomic<uint64_t> extent_walks_{0};
  std::atomic<uint64_t> extent_hint_hits_{0};

  std::atomic<uint64_t> free_blocks_{0};
  std::atomic<uint64_t> free_inodes_{0};
  std::atomic<uint64_t> alloc_block_hint_{0};
  std::atomic<uint64_t> alloc_ino_hint_{0};

  std::atomic<Seq> current_op_seq_{0};
  std::atomic<Seq> max_dirty_seq_{0};
  std::function<void(Seq)> durable_cb_;

  // -- group-commit engine (base_txn.cc) ---------------------------------
  // commit_mu_ guards the epoch watermarks, the pipeline flags, and
  // checkpoint_shadow_. epoch_open_ is additionally published through the
  // block cache so ops tag dirty blocks lock-free. Invariants:
  //   epoch_durable_ <= epoch_staged_ + in-flight staged transactions,
  //   and every dirty block with epoch <= epoch_staged_ is covered by a
  //   staged-or-durable transaction (unless pipeline_broken_, in which
  //   case recovery re-snapshots from epoch_durable_).
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  bool committer_busy_ = false;      // one committer stages at a time
  std::atomic<uint64_t> epoch_open_{1};
  uint64_t epoch_staged_ = 0;        // highest epoch staged into the pipeline
  uint64_t epoch_durable_ = 0;       // highest epoch proven durable
  uint64_t epoch_failed_ = 0;        // highest epoch whose commit failed
  bool pipeline_broken_ = false;     // journal pipeline needs rewind
  Status commit_error_ = Status::Ok();
  std::atomic<uint64_t> commit_waiters_{0};
  // Latest durable classification (true = file data written in place) of
  // every block touched by a committed transaction since the last
  // checkpoint, in commit order. The checkpointer re-reads write-back
  // content from the journal region itself (no retained cache handles, so
  // re-dirtying a journaled block costs no CoW clone) and uses this map to
  // skip journaled copies of blocks that were since freed and reallocated
  // as file data -- their in-place write supersedes the journal.
  std::unordered_map<BlockNo, bool> durable_class_;

  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> checkpoints_{0};
  uint64_t replays_at_mount_ = 0;
  std::atomic<bool> unmounted_{false};

  // Exports stats() into the global metrics registry for as long as this
  // instance may be sampled; reset explicitly at the top of ~BaseFs so a
  // snapshot can never observe a partially destroyed filesystem.
  obs::MetricsRegistry::CollectorHandle obs_collector_;

  friend class BaseFsTestPeer;
};

}  // namespace raefs
