// Data path of the base filesystem: file-block mapping through direct /
// indirect / double-indirect pointers, read/write/truncate, block freeing.
#include <algorithm>
#include <cstring>

#include "basefs/base_fs.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace raefs {

namespace {

uint64_t read_ptr(std::span<const uint8_t> block, uint32_t index) {
  uint64_t v = 0;
  std::memcpy(&v, block.data() + index * 8, sizeof(v));
  return v;
}

void write_ptr(std::span<uint8_t> block, uint32_t index, uint64_t v) {
  std::memcpy(block.data() + index * 8, &v, sizeof(v));
}

}  // namespace

// ---------------------------------------------------------------------------
// block mapping
// ---------------------------------------------------------------------------

Result<BlockNo> BaseFs::map_block(DiskInode* inode, uint64_t file_block,
                                  bool alloc) {
  if (file_block >= kMaxFileBlocks) return Errno::kFBig;

  auto alloc_zeroed = [&](BlockClass cls) -> Result<BlockNo> {
    RAEFS_TRY(BlockNo b, alloc_block());
    Status st = block_cache_.write(b, std::vector<uint8_t>(kBlockSize, 0));
    if (!st.ok()) {
      (void)free_block(b);
      return st.error();
    }
    note_meta_block(b, cls);
    return b;
  };

  // Direct pointers.
  if (file_block < kNumDirect) {
    BlockNo b = inode->direct[file_block];
    if (b == 0 && alloc) {
      RAEFS_TRY(b, alloc_zeroed(BlockClass::kFileData));
      inode->direct[file_block] = b;
      note_mutation();
    }
    BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
                "direct pointer outside data region");
    return b;
  }

  // Single indirect. A fresh pointer block allocated here is released
  // again if any later step of the same call fails: a map_block that does
  // not return a wired data block must not consume space.
  uint64_t rel = file_block - kNumDirect;
  if (rel < kPtrsPerBlock) {
    bool fresh_ind = false;
    if (inode->indirect == 0) {
      if (!alloc) return BlockNo{0};
      RAEFS_TRY(BlockNo ib, alloc_zeroed(BlockClass::kIndirectMeta));
      inode->indirect = ib;
      fresh_ind = true;
      note_mutation();
    }
    auto unwind = [&] {
      if (fresh_ind) {
        (void)free_block(inode->indirect);
        inode->indirect = 0;
      }
    };
    auto iread = block_cache_.read(inode->indirect);
    if (!iread.ok()) {
      unwind();
      return iread.error();
    }
    auto iblock = std::move(iread).value();
    BlockNo b = read_ptr(iblock, static_cast<uint32_t>(rel));
    if (b == 0 && alloc) {
      auto fresh = alloc_zeroed(BlockClass::kFileData);
      if (!fresh.ok()) {
        unwind();
        return fresh.error();
      }
      b = fresh.value();
      Status wired = block_cache_.modify(
          inode->indirect, [&](std::span<uint8_t> blk) {
            write_ptr(blk, static_cast<uint32_t>(rel), b);
          });
      if (!wired.ok()) {
        (void)free_block(b);
        unwind();
        return wired.error();
      }
      note_meta_block(inode->indirect, BlockClass::kIndirectMeta);
      note_mutation();
    }
    BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
                "indirect pointer outside data region");
    return b;
  }

  // Double indirect. Same contract: the chain of fresh intermediates
  // (top block, L1 block) is torn back down on any partial failure.
  rel -= kPtrsPerBlock;
  uint64_t l1 = rel / kPtrsPerBlock;
  uint64_t l2 = rel % kPtrsPerBlock;
  bool fresh_dind = false;
  bool fresh_l1 = false;
  BlockNo l1_block = 0;
  auto unwind = [&] {
    if (fresh_l1 && l1_block != 0) {
      if (!fresh_dind) {
        (void)block_cache_.modify(
            inode->dindirect, [&](std::span<uint8_t> blk) {
              write_ptr(blk, static_cast<uint32_t>(l1), 0);
            });
      }
      (void)free_block(l1_block);
    }
    if (fresh_dind) {
      (void)free_block(inode->dindirect);
      inode->dindirect = 0;
    }
  };
  if (inode->dindirect == 0) {
    if (!alloc) return BlockNo{0};
    RAEFS_TRY(BlockNo db, alloc_zeroed(BlockClass::kIndirectMeta));
    inode->dindirect = db;
    fresh_dind = true;
    note_mutation();
  }
  auto dread = block_cache_.read(inode->dindirect);
  if (!dread.ok()) {
    unwind();
    return dread.error();
  }
  auto dblock = std::move(dread).value();
  l1_block = read_ptr(dblock, static_cast<uint32_t>(l1));
  if (l1_block == 0) {
    if (!alloc) return BlockNo{0};
    auto fresh = alloc_zeroed(BlockClass::kIndirectMeta);
    if (!fresh.ok()) {
      unwind();
      return fresh.error();
    }
    l1_block = fresh.value();
    fresh_l1 = true;
    Status wired = block_cache_.modify(
        inode->dindirect, [&](std::span<uint8_t> blk) {
          write_ptr(blk, static_cast<uint32_t>(l1), l1_block);
        });
    if (!wired.ok()) {
      unwind();
      return wired.error();
    }
    note_meta_block(inode->dindirect, BlockClass::kIndirectMeta);
    note_mutation();
  }
  BASE_BUG_ON(!geo_.is_data_block(l1_block), "BaseFs::map_block",
              "double-indirect L1 pointer outside data region");
  auto l1read = block_cache_.read(l1_block);
  if (!l1read.ok()) {
    unwind();
    return l1read.error();
  }
  auto l1_data = std::move(l1read).value();
  BlockNo b = read_ptr(l1_data, static_cast<uint32_t>(l2));
  if (b == 0 && alloc) {
    auto fresh = alloc_zeroed(BlockClass::kFileData);
    if (!fresh.ok()) {
      unwind();
      return fresh.error();
    }
    b = fresh.value();
    Status wired = block_cache_.modify(l1_block, [&](std::span<uint8_t> blk) {
      write_ptr(blk, static_cast<uint32_t>(l2), b);
    });
    if (!wired.ok()) {
      (void)free_block(b);
      unwind();
      return wired.error();
    }
    note_meta_block(l1_block, BlockClass::kIndirectMeta);
    note_mutation();
  }
  BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
              "double-indirect pointer outside data region");
  return b;
}

// ---------------------------------------------------------------------------
// batched mapping walk
// ---------------------------------------------------------------------------

Result<std::vector<BaseFs::Extent>> BaseFs::map_range(Ino ino,
                                                      const DiskInode& inode,
                                                      uint64_t first_fb,
                                                      uint64_t count) {
  std::vector<Extent> out;
  if (count == 0) return out;
  if (first_fb >= kMaxFileBlocks || count > kMaxFileBlocks - first_fb) {
    return Errno::kFBig;
  }
  const uint64_t end = first_fb + count;
  const uint64_t epoch = mutation_epoch_.load(std::memory_order_acquire);

  // Hint fast path: the whole request lies inside the last mapped run
  // recorded for this inode, and no mutation has happened since.
  {
    std::lock_guard<std::mutex> lk(extent_hint_mu_);
    auto it = extent_hints_.find(ino);
    if (it != extent_hints_.end() && it->second.epoch == epoch) {
      const Extent& h = it->second.ext;
      if (h.disk_block != 0 && first_fb >= h.file_block &&
          end <= h.file_block + h.len) {
        extent_hint_hits_.fetch_add(1, std::memory_order_relaxed);
        out.push_back(
            Extent{first_fb, h.disk_block + (first_fb - h.file_block), count});
        return out;
      }
    }
  }
  extent_walks_.fetch_add(1, std::memory_order_relaxed);

  // Coalesce a single mapped (or hole) block onto the extent list.
  auto push = [&out](uint64_t fb, BlockNo b, uint64_t len) {
    if (!out.empty()) {
      Extent& last = out.back();
      if (last.file_block + last.len == fb &&
          ((last.disk_block == 0 && b == 0) ||
           (last.disk_block != 0 && b != 0 &&
            last.disk_block + last.len == b))) {
        last.len += len;
        return;
      }
    }
    out.push_back(Extent{fb, b, len});
  };

  // Pointer-block context, loaded at most once each per walk. This is the
  // whole point: an N-block IO touches each indirect block once, not N
  // times.
  BlockRef ind;                      // single-indirect pointer block
  BlockRef dind;                     // double-indirect top block
  BlockRef l1_data;                  // current double-indirect L1 block
  uint64_t l1_loaded = ~uint64_t{0};

  uint64_t fb = first_fb;
  while (fb < end) {
    if (fb < kNumDirect) {
      BlockNo b = inode.direct[fb];
      BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_range",
                  "direct pointer outside data region");
      push(fb, b, 1);
      ++fb;
      continue;
    }
    uint64_t rel = fb - kNumDirect;
    if (rel < kPtrsPerBlock) {
      if (inode.indirect == 0) {
        uint64_t run = std::min(end - fb, kPtrsPerBlock - rel);
        push(fb, 0, run);
        fb += run;
        continue;
      }
      if (!ind) RAEFS_TRY(ind, block_cache_.read(inode.indirect));
      BlockNo b = read_ptr(ind, static_cast<uint32_t>(rel));
      BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_range",
                  "indirect pointer outside data region");
      push(fb, b, 1);
      ++fb;
      continue;
    }
    rel -= kPtrsPerBlock;
    if (inode.dindirect == 0) {
      push(fb, 0, end - fb);  // the whole remaining range is a hole
      break;
    }
    uint64_t l1 = rel / kPtrsPerBlock;
    uint64_t l2 = rel % kPtrsPerBlock;
    if (!dind) RAEFS_TRY(dind, block_cache_.read(inode.dindirect));
    BlockNo l1_block = read_ptr(dind, static_cast<uint32_t>(l1));
    if (l1_block == 0) {
      uint64_t run = std::min(end - fb, kPtrsPerBlock - l2);
      push(fb, 0, run);
      fb += run;
      continue;
    }
    BASE_BUG_ON(!geo_.is_data_block(l1_block), "BaseFs::map_range",
                "double-indirect L1 pointer outside data region");
    if (l1_loaded != l1) {
      RAEFS_TRY(l1_data, block_cache_.read(l1_block));
      l1_loaded = l1;
    }
    BlockNo b = read_ptr(l1_data, static_cast<uint32_t>(l2));
    BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_range",
                "double-indirect pointer outside data region");
    push(fb, b, 1);
    ++fb;
    continue;
  }

  // Extend the final mapped run past the request using only the pointer
  // context already in hand (no extra reads), so the recorded hint can
  // serve the next sequential IO without a walk.
  Extent hint{};
  if (!out.empty() && out.back().disk_block != 0) hint = out.back();
  if (hint.len != 0 && hint.file_block + hint.len == end) {
    constexpr uint64_t kHintCap = 1024;
    uint64_t efb = end;
    while (efb < kMaxFileBlocks && hint.len < kHintCap) {
      BlockNo b = 0;
      if (efb < kNumDirect) {
        b = inode.direct[efb];
      } else if (efb - kNumDirect < kPtrsPerBlock) {
        if (!ind) break;
        b = read_ptr(ind, static_cast<uint32_t>(efb - kNumDirect));
      } else {
        uint64_t erel = efb - kNumDirect - kPtrsPerBlock;
        if (l1_loaded != erel / kPtrsPerBlock) break;
        b = read_ptr(l1_data, static_cast<uint32_t>(erel % kPtrsPerBlock));
      }
      if (b == 0 || !geo_.is_data_block(b) ||
          b != hint.disk_block + hint.len) {
        break;
      }
      ++hint.len;
      ++efb;
    }
  } else {
    // Otherwise remember the longest mapped run of the walk.
    for (const Extent& e : out) {
      if (e.disk_block != 0 && e.len > hint.len) hint = e;
    }
  }
  if (hint.len != 0) {
    std::lock_guard<std::mutex> lk(extent_hint_mu_);
    if (extent_hints_.size() > 1024) extent_hints_.clear();
    extent_hints_[ino] = ExtentHint{hint, epoch};
  }
  return out;
}

// ---------------------------------------------------------------------------
// freeing
// ---------------------------------------------------------------------------

Status BaseFs::free_file_blocks(DiskInode* inode, uint64_t keep_blocks) {
  // Direct.
  for (uint64_t fb = keep_blocks; fb < kNumDirect; ++fb) {
    if (inode->direct[fb] != 0) {
      RAEFS_TRY_VOID(free_block(inode->direct[fb]));
      inode->direct[fb] = 0;
    }
  }

  // Single indirect.
  if (inode->indirect != 0) {
    uint64_t first_kept =
        keep_blocks > kNumDirect ? keep_blocks - kNumDirect : 0;
    if (first_kept < kPtrsPerBlock) {
      RAEFS_TRY(auto iblock, block_cache_.read(inode->indirect));
      bool any_kept = first_kept > 0;
      for (uint64_t i = first_kept; i < kPtrsPerBlock; ++i) {
        BlockNo b = read_ptr(iblock, static_cast<uint32_t>(i));
        if (b != 0) RAEFS_TRY_VOID(free_block(b));
      }
      if (!any_kept) {
        RAEFS_TRY_VOID(free_block(inode->indirect));
        inode->indirect = 0;
      } else {
        RAEFS_TRY_VOID(block_cache_.modify(
            inode->indirect, [&](std::span<uint8_t> blk) {
              for (uint64_t i = first_kept; i < kPtrsPerBlock; ++i) {
                write_ptr(blk, static_cast<uint32_t>(i), 0);
              }
            }));
        note_meta_block(inode->indirect, BlockClass::kIndirectMeta);
      }
    }
  }

  // Double indirect.
  if (inode->dindirect != 0) {
    uint64_t base = kNumDirect + kPtrsPerBlock;
    uint64_t first_kept = keep_blocks > base ? keep_blocks - base : 0;
    if (first_kept < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
      RAEFS_TRY(auto dblock, block_cache_.read(inode->dindirect));
      bool dind_kept = first_kept > 0;
      for (uint64_t l1 = 0; l1 < kPtrsPerBlock; ++l1) {
        BlockNo l1_block = read_ptr(dblock, static_cast<uint32_t>(l1));
        if (l1_block == 0) continue;
        uint64_t l1_first = l1 * kPtrsPerBlock;
        uint64_t l1_last = l1_first + kPtrsPerBlock;
        if (l1_last <= first_kept) continue;  // fully kept
        uint64_t start = first_kept > l1_first ? first_kept - l1_first : 0;
        RAEFS_TRY(auto l1_data, block_cache_.read(l1_block));
        for (uint64_t i = start; i < kPtrsPerBlock; ++i) {
          BlockNo b = read_ptr(l1_data, static_cast<uint32_t>(i));
          if (b != 0) RAEFS_TRY_VOID(free_block(b));
        }
        if (start == 0) {
          RAEFS_TRY_VOID(free_block(l1_block));
          RAEFS_TRY_VOID(block_cache_.modify(
              inode->dindirect, [&](std::span<uint8_t> blk) {
                write_ptr(blk, static_cast<uint32_t>(l1), 0);
              }));
          note_meta_block(inode->dindirect, BlockClass::kIndirectMeta);
        } else {
          RAEFS_TRY_VOID(
              block_cache_.modify(l1_block, [&](std::span<uint8_t> blk) {
                for (uint64_t i = start; i < kPtrsPerBlock; ++i) {
                  write_ptr(blk, static_cast<uint32_t>(i), 0);
                }
              }));
          note_meta_block(l1_block, BlockClass::kIndirectMeta);
        }
      }
      if (!dind_kept) {
        RAEFS_TRY_VOID(free_block(inode->dindirect));
        inode->dindirect = 0;
      }
    }
  }
  note_mutation();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// read / write / truncate
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> BaseFs::read(Ino ino, uint64_t gen, FileOff off,
                                          uint64_t len) {
  obs::TraceSpan span(obs::kSpanBaseRead, clock_.get());
  // Gate wait measured separately: with a commit draining ops, the time a
  // reader spends blocked here is lock wait, not cache work, and the
  // slow-op watchdog reports it as such.
  obs::TraceSpan lock_wait(obs::kSpanBaseLockWait, clock_.get());
  std::shared_lock gate(op_gate_);
  lock_wait.end();
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kRead, "", ino, off, len);
  if (!geo_.ino_valid(ino)) return Errno::kInval;

  std::shared_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type == FileType::kDirectory) return Errno::kIsDir;

  if (off >= node.size) return std::vector<uint8_t>{};
  len = std::min<uint64_t>(len, node.size - off);
  std::vector<uint8_t> out(len);
  if (len == 0) return out;

  // One mapping walk for the whole request, then per-extent copies.
  uint64_t first_fb = off / kBlockSize;
  uint64_t last_fb = (off + len - 1) / kBlockSize;
  RAEFS_TRY(auto extents, map_range(ino, node, first_fb, last_fb - first_fb + 1));

  uint64_t done = 0;
  for (const Extent& e : extents) {
    if (done >= len) break;
    if (e.disk_block == 0) {
      // Hole: the extent reads as zeros up to its end (or the request end).
      uint64_t ext_end = (e.file_block + e.len) * kBlockSize;
      uint64_t chunk = std::min<uint64_t>(len - done, ext_end - (off + done));
      std::memset(out.data() + done, 0, chunk);
      done += chunk;
      continue;
    }
    for (uint64_t i = 0; i < e.len && done < len; ++i) {
      uint64_t pos = off + done;
      uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
      uint64_t chunk = std::min<uint64_t>(len - done, kBlockSize - in_block);
      uint64_t idx = pos / kBlockSize - e.file_block;
      RAEFS_TRY(auto data, block_cache_.read(e.disk_block + idx));
      std::memcpy(out.data() + done, data.data() + in_block, chunk);
      done += chunk;
    }
  }
  return out;
}

Result<uint64_t> BaseFs::write(Ino ino, uint64_t gen, FileOff off,
                               std::span<const uint8_t> data) {
  obs::TraceSpan span(obs::kSpanBaseWrite, clock_.get());
  obs::TraceSpan lock_wait(obs::kSpanBaseLockWait, clock_.get());
  std::shared_lock gate(op_gate_);
  lock_wait.end();
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kWrite, "", ino, off, data.size());
  if (!geo_.ino_valid(ino)) return Errno::kInval;
  // Overflow-safe bound check: `off + data.size()` can wrap uint64 for
  // offsets near UINT64_MAX, which would slip past a naive comparison.
  if (data.size() > kMaxFileSize || off > kMaxFileSize - data.size()) {
    return Errno::kFBig;
  }

  std::unique_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type != FileType::kRegular) return Errno::kIsDir;
  const DiskInode entry_node = node;

  // Pre-walk the existing mappings once; only holes fall back to the
  // per-block allocating walk. Allocation never remaps an existing block,
  // so extents gathered here stay valid across mid-write allocations.
  std::vector<Extent> extents;
  if (!data.empty()) {
    uint64_t first_fb = off / kBlockSize;
    uint64_t last_fb = (off + data.size() - 1) / kBlockSize;
    auto mapped = map_range(ino, node, first_fb, last_fb - first_fb + 1);
    if (mapped.ok()) extents = std::move(mapped).value();
  }
  size_t ei = 0;

  uint64_t done = 0;
  Errno failure = Errno::kOk;
  while (done < data.size()) {
    uint64_t pos = off + done;
    uint64_t fb = pos / kBlockSize;
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kBlockSize - in_block);

    bug_site("basefs.write.map_block", OpKind::kWrite, "", ino,
             fb * kBlockSize, chunk);
    BlockNo target = 0;
    while (ei < extents.size() &&
           extents[ei].file_block + extents[ei].len <= fb) {
      ++ei;
    }
    if (ei < extents.size() && extents[ei].file_block <= fb &&
        extents[ei].disk_block != 0) {
      target = extents[ei].disk_block + (fb - extents[ei].file_block);
    }
    if (target == 0) {
      auto mapped = map_block(&node, fb, /*alloc=*/true);
      if (!mapped.ok()) {
        failure = mapped.error();
        break;
      }
      target = mapped.value();
    }
    Status st = block_cache_.modify(target, [&](std::span<uint8_t> blk) {
      std::memcpy(blk.data() + in_block, data.data() + done, chunk);
    });
    if (!st.ok()) {
      failure = st.error();
      break;
    }
    // Silent DATA corruption injection point: flips a byte of the block
    // just written, in cache. Metadata validation cannot see it; only
    // re-execution (the deep scrub / recovery replay) can.
    bug_site("basefs.write.data", OpKind::kWrite, "", ino, fb * kBlockSize,
             chunk, [&] {
               (void)block_cache_.modify(target, [&](std::span<uint8_t> blk) {
                 blk[in_block] ^= 0x01;
               });
             });
    done += chunk;
  }

  if (done == 0 && failure != Errno::kOk) {
    // A mid-loop map_block may have wired fresh blocks into the mapping
    // before the failure. Those live only in the local inode copy and the
    // cached pointer blocks; dropping the copy here would leave them
    // allocated in the bitmap but unreachable from any inode. Persist the
    // mapping so the blocks stay owned (pre-allocated past the write
    // point) instead of leaking.
    bool mapping_changed =
        node.indirect != entry_node.indirect ||
        node.dindirect != entry_node.dindirect ||
        !std::equal(std::begin(node.direct), std::end(node.direct),
                    std::begin(entry_node.direct));
    if (mapping_changed) {
      put_inode(ino, node);
      note_mutation();
    }
    return failure;
  }
  if (done > 0) {
    node.size = std::max<uint64_t>(node.size, off + done);
    node.mtime = clock_ ? clock_->now() : 0;
    put_inode(ino, node);
    note_mutation();
  }
  // Wrong-result injection point: a buggy base may *report* fewer bytes
  // than it wrote (or vice versa) -- invisible to the app, detectable
  // only by the shadow's outcome cross-check (scrub / recovery).
  uint64_t reported = done;
  bug_site("basefs.write.result", OpKind::kWrite, "", ino, off, done, [&] {
    if (reported > 0) --reported;
  });
  return reported;  // short write on mid-stream failure, POSIX-style
}

Status BaseFs::truncate(Ino ino, uint64_t gen, uint64_t new_size) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kTruncate, "", ino, 0, new_size);
  bug_site("basefs.truncate.entry", OpKind::kTruncate, "", ino, 0, new_size);
  if (!geo_.ino_valid(ino)) return Errno::kInval;
  if (new_size > kMaxFileSize) return Errno::kFBig;

  std::unique_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type != FileType::kRegular) return Errno::kIsDir;

  if (new_size < node.size) {
    uint64_t keep = (new_size + kBlockSize - 1) / kBlockSize;
    RAEFS_TRY_VOID(free_file_blocks(&node, keep));
    // Zero the tail of the final kept block so later growth reads zeros.
    if (new_size % kBlockSize != 0) {
      RAEFS_TRY(BlockNo b, map_block(&node, new_size / kBlockSize,
                                     /*alloc=*/false));
      if (b != 0) {
        uint32_t from = static_cast<uint32_t>(new_size % kBlockSize);
        RAEFS_TRY_VOID(block_cache_.modify(b, [&](std::span<uint8_t> blk) {
          std::memset(blk.data() + from, 0, kBlockSize - from);
        }));
      }
    }
  }
  // Growth is sparse: unmapped blocks read as zeros.
  node.size = new_size;
  node.mtime = clock_ ? clock_->now() : 0;
  put_inode(ino, node);
  note_mutation();
  return Status::Ok();
}

Status BaseFs::fsync(Ino ino) {
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kFsync, "", ino, 0, 0);
  // Join the epoch open right now and wait only for *its* durability:
  // concurrent fsyncs collapse into one group-commit transaction, and an
  // epoch opened after this call owes us nothing.
  return commit_upto(epoch_open_.load(std::memory_order_acquire),
                     /*force_checkpoint=*/false);
}

Status BaseFs::sync() {
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kSync, "", 0, 0, 0);
  return commit_upto(epoch_open_.load(std::memory_order_acquire),
                     /*force_checkpoint=*/false);
}

}  // namespace raefs
