// Data path of the base filesystem: file-block mapping through direct /
// indirect / double-indirect pointers, read/write/truncate, block freeing.
#include <cstring>

#include "basefs/base_fs.h"

namespace raefs {

namespace {

uint64_t read_ptr(std::span<const uint8_t> block, uint32_t index) {
  uint64_t v = 0;
  std::memcpy(&v, block.data() + index * 8, sizeof(v));
  return v;
}

void write_ptr(std::span<uint8_t> block, uint32_t index, uint64_t v) {
  std::memcpy(block.data() + index * 8, &v, sizeof(v));
}

}  // namespace

// ---------------------------------------------------------------------------
// block mapping
// ---------------------------------------------------------------------------

Result<BlockNo> BaseFs::map_block(DiskInode* inode, uint64_t file_block,
                                  bool alloc) {
  if (file_block >= kMaxFileBlocks) return Errno::kFBig;

  auto alloc_zeroed = [&](BlockClass cls) -> Result<BlockNo> {
    RAEFS_TRY(BlockNo b, alloc_block());
    RAEFS_TRY_VOID(block_cache_.write(b, std::vector<uint8_t>(kBlockSize, 0)));
    note_meta_block(b, cls);
    return b;
  };

  // Direct pointers.
  if (file_block < kNumDirect) {
    BlockNo b = inode->direct[file_block];
    if (b == 0 && alloc) {
      RAEFS_TRY(b, alloc_zeroed(BlockClass::kFileData));
      inode->direct[file_block] = b;
      note_mutation();
    }
    BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
                "direct pointer outside data region");
    return b;
  }

  // Single indirect.
  uint64_t rel = file_block - kNumDirect;
  if (rel < kPtrsPerBlock) {
    if (inode->indirect == 0) {
      if (!alloc) return BlockNo{0};
      RAEFS_TRY(BlockNo ib, alloc_zeroed(BlockClass::kIndirectMeta));
      inode->indirect = ib;
      note_mutation();
    }
    RAEFS_TRY(auto iblock, block_cache_.read(inode->indirect));
    BlockNo b = read_ptr(iblock, static_cast<uint32_t>(rel));
    if (b == 0 && alloc) {
      RAEFS_TRY(b, alloc_zeroed(BlockClass::kFileData));
      RAEFS_TRY_VOID(block_cache_.modify(
          inode->indirect, [&](std::span<uint8_t> blk) {
            write_ptr(blk, static_cast<uint32_t>(rel), b);
          }));
      note_meta_block(inode->indirect, BlockClass::kIndirectMeta);
      note_mutation();
    }
    BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
                "indirect pointer outside data region");
    return b;
  }

  // Double indirect.
  rel -= kPtrsPerBlock;
  uint64_t l1 = rel / kPtrsPerBlock;
  uint64_t l2 = rel % kPtrsPerBlock;
  if (inode->dindirect == 0) {
    if (!alloc) return BlockNo{0};
    RAEFS_TRY(BlockNo db, alloc_zeroed(BlockClass::kIndirectMeta));
    inode->dindirect = db;
    note_mutation();
  }
  RAEFS_TRY(auto dblock, block_cache_.read(inode->dindirect));
  BlockNo l1_block = read_ptr(dblock, static_cast<uint32_t>(l1));
  if (l1_block == 0) {
    if (!alloc) return BlockNo{0};
    RAEFS_TRY(l1_block, alloc_zeroed(BlockClass::kIndirectMeta));
    RAEFS_TRY_VOID(block_cache_.modify(
        inode->dindirect, [&](std::span<uint8_t> blk) {
          write_ptr(blk, static_cast<uint32_t>(l1), l1_block);
        }));
    note_meta_block(inode->dindirect, BlockClass::kIndirectMeta);
    note_mutation();
  }
  BASE_BUG_ON(!geo_.is_data_block(l1_block), "BaseFs::map_block",
              "double-indirect L1 pointer outside data region");
  RAEFS_TRY(auto l1_data, block_cache_.read(l1_block));
  BlockNo b = read_ptr(l1_data, static_cast<uint32_t>(l2));
  if (b == 0 && alloc) {
    RAEFS_TRY(b, alloc_zeroed(BlockClass::kFileData));
    RAEFS_TRY_VOID(
        block_cache_.modify(l1_block, [&](std::span<uint8_t> blk) {
          write_ptr(blk, static_cast<uint32_t>(l2), b);
        }));
    note_meta_block(l1_block, BlockClass::kIndirectMeta);
    note_mutation();
  }
  BASE_BUG_ON(b != 0 && !geo_.is_data_block(b), "BaseFs::map_block",
              "double-indirect pointer outside data region");
  return b;
}

// ---------------------------------------------------------------------------
// freeing
// ---------------------------------------------------------------------------

Status BaseFs::free_file_blocks(DiskInode* inode, uint64_t keep_blocks) {
  // Direct.
  for (uint64_t fb = keep_blocks; fb < kNumDirect; ++fb) {
    if (inode->direct[fb] != 0) {
      RAEFS_TRY_VOID(free_block(inode->direct[fb]));
      inode->direct[fb] = 0;
    }
  }

  // Single indirect.
  if (inode->indirect != 0) {
    uint64_t first_kept =
        keep_blocks > kNumDirect ? keep_blocks - kNumDirect : 0;
    if (first_kept < kPtrsPerBlock) {
      RAEFS_TRY(auto iblock, block_cache_.read(inode->indirect));
      bool any_kept = first_kept > 0;
      for (uint64_t i = first_kept; i < kPtrsPerBlock; ++i) {
        BlockNo b = read_ptr(iblock, static_cast<uint32_t>(i));
        if (b != 0) RAEFS_TRY_VOID(free_block(b));
      }
      if (!any_kept) {
        RAEFS_TRY_VOID(free_block(inode->indirect));
        inode->indirect = 0;
      } else {
        RAEFS_TRY_VOID(block_cache_.modify(
            inode->indirect, [&](std::span<uint8_t> blk) {
              for (uint64_t i = first_kept; i < kPtrsPerBlock; ++i) {
                write_ptr(blk, static_cast<uint32_t>(i), 0);
              }
            }));
        note_meta_block(inode->indirect, BlockClass::kIndirectMeta);
      }
    }
  }

  // Double indirect.
  if (inode->dindirect != 0) {
    uint64_t base = kNumDirect + kPtrsPerBlock;
    uint64_t first_kept = keep_blocks > base ? keep_blocks - base : 0;
    if (first_kept < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
      RAEFS_TRY(auto dblock, block_cache_.read(inode->dindirect));
      bool dind_kept = first_kept > 0;
      for (uint64_t l1 = 0; l1 < kPtrsPerBlock; ++l1) {
        BlockNo l1_block = read_ptr(dblock, static_cast<uint32_t>(l1));
        if (l1_block == 0) continue;
        uint64_t l1_first = l1 * kPtrsPerBlock;
        uint64_t l1_last = l1_first + kPtrsPerBlock;
        if (l1_last <= first_kept) continue;  // fully kept
        uint64_t start = first_kept > l1_first ? first_kept - l1_first : 0;
        RAEFS_TRY(auto l1_data, block_cache_.read(l1_block));
        for (uint64_t i = start; i < kPtrsPerBlock; ++i) {
          BlockNo b = read_ptr(l1_data, static_cast<uint32_t>(i));
          if (b != 0) RAEFS_TRY_VOID(free_block(b));
        }
        if (start == 0) {
          RAEFS_TRY_VOID(free_block(l1_block));
          RAEFS_TRY_VOID(block_cache_.modify(
              inode->dindirect, [&](std::span<uint8_t> blk) {
                write_ptr(blk, static_cast<uint32_t>(l1), 0);
              }));
          note_meta_block(inode->dindirect, BlockClass::kIndirectMeta);
        } else {
          RAEFS_TRY_VOID(
              block_cache_.modify(l1_block, [&](std::span<uint8_t> blk) {
                for (uint64_t i = start; i < kPtrsPerBlock; ++i) {
                  write_ptr(blk, static_cast<uint32_t>(i), 0);
                }
              }));
          note_meta_block(l1_block, BlockClass::kIndirectMeta);
        }
      }
      if (!dind_kept) {
        RAEFS_TRY_VOID(free_block(inode->dindirect));
        inode->dindirect = 0;
      }
    }
  }
  note_mutation();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// read / write / truncate
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> BaseFs::read(Ino ino, uint64_t gen, FileOff off,
                                          uint64_t len) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kRead, "", ino, off, len);
  if (!geo_.ino_valid(ino)) return Errno::kInval;

  std::shared_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type == FileType::kDirectory) return Errno::kIsDir;

  if (off >= node.size) return std::vector<uint8_t>{};
  len = std::min<uint64_t>(len, node.size - off);
  std::vector<uint8_t> out(len);

  uint64_t done = 0;
  while (done < len) {
    uint64_t pos = off + done;
    uint64_t fb = pos / kBlockSize;
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    uint64_t chunk = std::min<uint64_t>(len - done, kBlockSize - in_block);
    RAEFS_TRY(BlockNo b, map_block(&node, fb, /*alloc=*/false));
    if (b == 0) {
      std::memset(out.data() + done, 0, chunk);  // hole
    } else {
      RAEFS_TRY(auto data, block_cache_.read(b));
      std::memcpy(out.data() + done, data.data() + in_block, chunk);
    }
    done += chunk;
  }
  return out;
}

Result<uint64_t> BaseFs::write(Ino ino, uint64_t gen, FileOff off,
                               std::span<const uint8_t> data) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kWrite, "", ino, off, data.size());
  if (!geo_.ino_valid(ino)) return Errno::kInval;
  if (off + data.size() > kMaxFileSize) return Errno::kFBig;

  std::unique_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type != FileType::kRegular) return Errno::kIsDir;

  uint64_t done = 0;
  Errno failure = Errno::kOk;
  while (done < data.size()) {
    uint64_t pos = off + done;
    uint64_t fb = pos / kBlockSize;
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kBlockSize - in_block);

    bug_site("basefs.write.map_block", OpKind::kWrite, "", ino,
             fb * kBlockSize, chunk);
    auto mapped = map_block(&node, fb, /*alloc=*/true);
    if (!mapped.ok()) {
      failure = mapped.error();
      break;
    }
    Status st = block_cache_.modify(
        mapped.value(), [&](std::span<uint8_t> blk) {
          std::memcpy(blk.data() + in_block, data.data() + done, chunk);
        });
    if (!st.ok()) {
      failure = st.error();
      break;
    }
    // Silent DATA corruption injection point: flips a byte of the block
    // just written, in cache. Metadata validation cannot see it; only
    // re-execution (the deep scrub / recovery replay) can.
    bug_site("basefs.write.data", OpKind::kWrite, "", ino, fb * kBlockSize,
             chunk, [&] {
               (void)block_cache_.modify(mapped.value(),
                                         [&](std::span<uint8_t> blk) {
                                           blk[in_block] ^= 0x01;
                                         });
             });
    done += chunk;
  }

  if (done == 0 && failure != Errno::kOk) return failure;
  if (done > 0) {
    node.size = std::max<uint64_t>(node.size, off + done);
    node.mtime = clock_ ? clock_->now() : 0;
    put_inode(ino, node);
    note_mutation();
  }
  // Wrong-result injection point: a buggy base may *report* fewer bytes
  // than it wrote (or vice versa) -- invisible to the app, detectable
  // only by the shadow's outcome cross-check (scrub / recovery).
  uint64_t reported = done;
  bug_site("basefs.write.result", OpKind::kWrite, "", ino, off, done, [&] {
    if (reported > 0) --reported;
  });
  return reported;  // short write on mid-stream failure, POSIX-style
}

Status BaseFs::truncate(Ino ino, uint64_t gen, uint64_t new_size) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kTruncate, "", ino, 0, new_size);
  bug_site("basefs.truncate.entry", OpKind::kTruncate, "", ino, 0, new_size);
  if (!geo_.ino_valid(ino)) return Errno::kInval;
  if (new_size > kMaxFileSize) return Errno::kFBig;

  std::unique_lock il(inode_lock(ino));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kBadFd;
  if (gen != 0 && gen != node.generation) return Errno::kBadFd;
  if (node.type != FileType::kRegular) return Errno::kIsDir;

  if (new_size < node.size) {
    uint64_t keep = (new_size + kBlockSize - 1) / kBlockSize;
    RAEFS_TRY_VOID(free_file_blocks(&node, keep));
    // Zero the tail of the final kept block so later growth reads zeros.
    if (new_size % kBlockSize != 0) {
      RAEFS_TRY(BlockNo b, map_block(&node, new_size / kBlockSize,
                                     /*alloc=*/false));
      if (b != 0) {
        uint32_t from = static_cast<uint32_t>(new_size % kBlockSize);
        RAEFS_TRY_VOID(block_cache_.modify(b, [&](std::span<uint8_t> blk) {
          std::memset(blk.data() + from, 0, kBlockSize - from);
        }));
      }
    }
  }
  // Growth is sparse: unmapped blocks read as zeros.
  node.size = new_size;
  node.mtime = clock_ ? clock_->now() : 0;
  put_inode(ino, node);
  note_mutation();
  return Status::Ok();
}

Status BaseFs::fsync(Ino ino) {
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kFsync, "", ino, 0, 0);
  return commit_txn(/*force_checkpoint=*/false);
}

Status BaseFs::sync() {
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kSync, "", 0, 0, 0);
  return commit_txn(/*force_checkpoint=*/false);
}

}  // namespace raefs
