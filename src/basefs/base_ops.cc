// Namespace operations of the base filesystem: path resolution through the
// dentry cache, create/mkdir/unlink/rmdir/rename/link/symlink/readdir/stat.
#include <algorithm>
#include <cstring>

#include "basefs/base_fs.h"
#include "common/path.h"

namespace raefs {

namespace {
constexpr uint32_t kMaxNlink = 65000;
}

// ---------------------------------------------------------------------------
// resolution
// ---------------------------------------------------------------------------

Result<std::optional<DirEntry>> BaseFs::dir_find(Ino dir_ino,
                                                 const DiskInode& dir,
                                                 std::string_view name) {
  DiskInode scan = dir;  // map_block with alloc=false does not modify
  uint64_t nblocks = dir.size_blocks();
  for (uint64_t fb = 0; fb < nblocks; ++fb) {
    RAEFS_TRY(BlockNo b, map_block(&scan, fb, /*alloc=*/false));
    if (b == 0) continue;
    // Linear dirent scan of one block: the CPU work the dentry cache
    // exists to avoid.
    if (clock_) clock_->advance(500);
    RAEFS_TRY(auto data, block_cache_.read(b));
    auto found = dirent_find_in_block(data, name);
    // Malformed dirents are the crafted-image crash class: the base oopses.
    BASE_BUG_ON(!found.ok(), "BaseFs::dir_find",
                "malformed directory entry (corrupt or crafted image)");
    if (found.value().has_value()) return found.value();
  }
  (void)dir_ino;
  return std::optional<DirEntry>();
}

Result<Ino> BaseFs::resolve(std::string_view path) {
  RAEFS_TRY(auto parts, split_path(path));
  Ino cur = kRootIno;
  for (const auto& comp : parts) {
    bug_site("basefs.lookup.component", OpKind::kLookup, comp, cur, 0, 0);
    RAEFS_TRY(DiskInode node, get_inode(cur));
    if (node.type != FileType::kDirectory) return Errno::kNotDir;

    if (opts_.use_dentry_cache) {
      if (auto hit = dentry_cache_.lookup(cur, comp)) {
        if (hit->negative()) return Errno::kNoEnt;
        cur = hit->ino;
        continue;
      }
    }
    RAEFS_TRY(auto entry, dir_find(cur, node, comp));
    if (!entry) {
      if (opts_.use_dentry_cache) dentry_cache_.insert_negative(cur, comp);
      return Errno::kNoEnt;
    }
    if (opts_.use_dentry_cache) {
      dentry_cache_.insert(cur, comp, entry->ino, entry->type);
    }
    cur = entry->ino;
  }
  return cur;
}

Result<BaseFs::ParentRef> BaseFs::resolve_parent(std::string_view path) {
  RAEFS_TRY(auto parts, split_path(path));
  if (parts.empty()) return Errno::kInval;  // the root has no parent entry
  std::string leaf = parts.back();
  parts.pop_back();
  RAEFS_TRY(Ino parent, resolve(join_path(parts)));
  RAEFS_TRY(DiskInode node, get_inode(parent));
  if (node.type != FileType::kDirectory) return Errno::kNotDir;
  return ParentRef{parent, std::move(leaf)};
}

Result<Ino> BaseFs::lookup(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kLookup, path, 0, 0, 0);
  std::shared_lock ns(namespace_mu_);
  return resolve(path);
}

// ---------------------------------------------------------------------------
// directory block maintenance
// ---------------------------------------------------------------------------

Status BaseFs::dir_insert(Ino dir_ino, DiskInode* dir, const DirEntry& entry,
                          std::string_view full_path) {
  uint64_t nblocks = dir->size_blocks();
  for (uint64_t fb = 0; fb < nblocks; ++fb) {
    RAEFS_TRY(BlockNo b, map_block(dir, fb, /*alloc=*/false));
    if (b == 0) continue;
    RAEFS_TRY(auto data, block_cache_.read(b));
    if (auto slot = dirent_free_slot(data)) {
      RAEFS_TRY_VOID(block_cache_.modify(b, [&](std::span<uint8_t> blk) {
        dirent_encode(blk, *slot, entry);
      }));
      note_meta_block(b, BlockClass::kDirMeta);
      note_mutation();
      return Status::Ok();
    }
  }
  // No free slot: grow the directory by one block.
  bug_site("basefs.dir_insert.grow", OpKind::kCreate, full_path, dir_ino, 0,
           nblocks + 1);
  RAEFS_TRY(BlockNo b, map_block(dir, nblocks, /*alloc=*/true));
  note_meta_block(b, BlockClass::kDirMeta);
  Status wrote = block_cache_.modify(
      b, [&](std::span<uint8_t> blk) { dirent_encode(blk, 0, entry); });
  if (!wrote.ok()) {
    // The grown block is wired into the mapping but holds no entry yet;
    // release it so a failed insert does not consume directory space.
    (void)free_file_blocks(dir, nblocks);
    return wrote.error();
  }
  dir->size = (nblocks + 1) * kBlockSize;
  note_mutation();
  return Status::Ok();
}

Status BaseFs::dir_remove(Ino dir_ino, DiskInode* dir, std::string_view name) {
  (void)dir_ino;
  uint64_t nblocks = dir->size_blocks();
  for (uint64_t fb = 0; fb < nblocks; ++fb) {
    RAEFS_TRY(BlockNo b, map_block(dir, fb, /*alloc=*/false));
    if (b == 0) continue;
    RAEFS_TRY(auto data, block_cache_.read(b));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      auto e = dirent_decode(data, slot);
      BASE_BUG_ON(!e.ok(), "BaseFs::dir_remove", "malformed directory entry");
      if (e.value().ino != kInvalidIno && e.value().name == name) {
        RAEFS_TRY_VOID(block_cache_.modify(b, [&](std::span<uint8_t> blk) {
          dirent_encode(blk, slot, DirEntry{});  // zero the slot
        }));
        note_meta_block(b, BlockClass::kDirMeta);
        note_mutation();
        return Status::Ok();
      }
    }
  }
  return Errno::kNoEnt;
}

Result<bool> BaseFs::dir_empty(const DiskInode& dir) {
  DiskInode scan = dir;
  uint64_t nblocks = dir.size_blocks();
  for (uint64_t fb = 0; fb < nblocks; ++fb) {
    RAEFS_TRY(BlockNo b, map_block(&scan, fb, /*alloc=*/false));
    if (b == 0) continue;
    RAEFS_TRY(auto data, block_cache_.read(b));
    auto entries = dirent_scan_block(data);
    BASE_BUG_ON(!entries.ok(), "BaseFs::dir_empty",
                "malformed directory entry");
    if (!entries.value().empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// create family
// ---------------------------------------------------------------------------

Result<Ino> BaseFs::create_common(OpKind op, std::string_view path,
                                  uint16_t mode, FileType type,
                                  std::string_view symlink_target) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", op, path, 0, 0, 0);
  bug_site("basefs.create.entry", op, path, 0, 0, 0);
  std::unique_lock ns(namespace_mu_);

  RAEFS_TRY(ParentRef ref, resolve_parent(path));
  if (!name_valid(ref.leaf)) {
    return ref.leaf.size() > kMaxNameLen ? Errno::kNameTooLong : Errno::kInval;
  }
  RAEFS_TRY(DiskInode parent, get_inode(ref.parent));
  RAEFS_TRY(auto existing, dir_find(ref.parent, parent, ref.leaf));
  if (existing) return Errno::kExist;
  if (type == FileType::kSymlink &&
      (symlink_target.empty() || symlink_target.size() > kBlockSize)) {
    return Errno::kInval;
  }

  RAEFS_TRY(Ino child, alloc_inode(type, mode));

  // Symlink targets are stored in the first data block.
  if (type == FileType::kSymlink) {
    RAEFS_TRY(DiskInode child_inode, get_inode(child));
    auto mapped = map_block(&child_inode, 0, /*alloc=*/true);
    if (!mapped.ok()) {
      (void)free_inode(child);
      return mapped.error();
    }
    BlockNo b = mapped.value();
    bug_site("basefs.symlink.alloc", op, path, child, 0,
             symlink_target.size(), [&] {
               // Injected NoCrash bug: silently flip a bit in the cached
               // block bitmap; only validate-on-sync or the shadow's
               // checks can notice before it persists.
               uint64_t victim = (b + 1 < geo_.total_blocks) ? b + 1 : b - 1;
               (void)block_cache_.modify(
                   geo_.block_bitmap_start + victim / kBitsPerBlock,
                   [&](std::span<uint8_t> blk) {
                     BitmapView view(blk, kBitsPerBlock);
                     uint64_t bit = victim % kBitsPerBlock;
                     if (view.test(bit)) {
                       view.clear(bit);
                     } else {
                       view.set(bit);
                     }
                   });
             });
    std::vector<uint8_t> data(kBlockSize, 0);
    std::memcpy(data.data(), symlink_target.data(), symlink_target.size());
    RAEFS_TRY_VOID(block_cache_.write(b, std::move(data)));
    child_inode.size = symlink_target.size();
    put_inode(child, child_inode);
  }

  DirEntry entry;
  entry.ino = child;
  entry.type = type;
  entry.name = ref.leaf;
  Status inserted = dir_insert(ref.parent, &parent, entry, path);
  if (!inserted.ok()) {
    RAEFS_TRY(DiskInode child_inode, get_inode(child));
    (void)free_file_blocks(&child_inode, 0);
    (void)free_inode(child);
    return inserted.error();
  }
  if (type == FileType::kDirectory) {
    BASE_BUG_ON(parent.nlink >= kMaxNlink, "BaseFs::create_common",
                "parent nlink overflow");
    ++parent.nlink;
  }
  parent.mtime = clock_ ? clock_->now() : 0;
  put_inode(ref.parent, parent);

  if (opts_.use_dentry_cache) {
    dentry_cache_.invalidate(ref.parent, ref.leaf);
    dentry_cache_.insert(ref.parent, ref.leaf, child, type);
  }
  return child;
}

Result<Ino> BaseFs::create(std::string_view path, uint16_t mode) {
  return create_common(OpKind::kCreate, path, mode, FileType::kRegular, {});
}

Result<Ino> BaseFs::mkdir(std::string_view path, uint16_t mode) {
  return create_common(OpKind::kMkdir, path, mode, FileType::kDirectory, {});
}

Result<Ino> BaseFs::symlink(std::string_view linkpath,
                            std::string_view target) {
  return create_common(OpKind::kSymlink, linkpath, 0777, FileType::kSymlink,
                       target);
}

// ---------------------------------------------------------------------------
// unlink / rmdir
// ---------------------------------------------------------------------------

Status BaseFs::unlink(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kUnlink, path, 0, 0, 0);
  bug_site("basefs.unlink.entry", OpKind::kUnlink, path, 0, 0, 0);
  std::unique_lock ns(namespace_mu_);

  RAEFS_TRY(ParentRef ref, resolve_parent(path));
  RAEFS_TRY(DiskInode parent, get_inode(ref.parent));
  RAEFS_TRY(auto entry, dir_find(ref.parent, parent, ref.leaf));
  if (!entry) return Errno::kNoEnt;
  if (entry->type == FileType::kDirectory) return Errno::kIsDir;

  RAEFS_TRY(DiskInode child, get_inode(entry->ino));
  RAEFS_TRY_VOID(dir_remove(ref.parent, &parent, ref.leaf));
  parent.mtime = clock_ ? clock_->now() : 0;
  put_inode(ref.parent, parent);

  BASE_BUG_ON(child.nlink == 0, "BaseFs::unlink", "nlink underflow");
  --child.nlink;
  if (child.nlink == 0) {
    RAEFS_TRY_VOID(free_file_blocks(&child, 0));
    RAEFS_TRY_VOID(free_inode(entry->ino));
  } else {
    put_inode(entry->ino, child);
  }

  if (opts_.use_dentry_cache) {
    dentry_cache_.invalidate(ref.parent, ref.leaf);
    dentry_cache_.insert_negative(ref.parent, ref.leaf);
  }
  return Status::Ok();
}

Status BaseFs::rmdir(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kRmdir, path, 0, 0, 0);
  std::unique_lock ns(namespace_mu_);

  RAEFS_TRY(ParentRef ref, resolve_parent(path));
  RAEFS_TRY(DiskInode parent, get_inode(ref.parent));
  RAEFS_TRY(auto entry, dir_find(ref.parent, parent, ref.leaf));
  if (!entry) return Errno::kNoEnt;
  if (entry->type != FileType::kDirectory) return Errno::kNotDir;

  RAEFS_TRY(DiskInode child, get_inode(entry->ino));
  RAEFS_TRY(bool empty, dir_empty(child));
  if (!empty) return Errno::kNotEmpty;

  RAEFS_TRY_VOID(dir_remove(ref.parent, &parent, ref.leaf));
  BASE_BUG_ON(parent.nlink <= 2, "BaseFs::rmdir", "parent nlink underflow");
  --parent.nlink;
  parent.mtime = clock_ ? clock_->now() : 0;
  put_inode(ref.parent, parent);

  RAEFS_TRY_VOID(free_file_blocks(&child, 0));
  RAEFS_TRY_VOID(free_inode(entry->ino));

  if (opts_.use_dentry_cache) {
    dentry_cache_.invalidate(ref.parent, ref.leaf);
    dentry_cache_.invalidate_dir(entry->ino);
    dentry_cache_.insert_negative(ref.parent, ref.leaf);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// rename / link
// ---------------------------------------------------------------------------

Status BaseFs::rename(std::string_view src, std::string_view dst) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kRename, src, 0, 0, 0);
  std::unique_lock ns(namespace_mu_);

  RAEFS_TRY(auto src_parts, split_path(src));
  RAEFS_TRY(auto dst_parts, split_path(dst));
  std::string src_canon = join_path(src_parts);
  std::string dst_canon = join_path(dst_parts);
  if (src_canon == "/" || dst_canon == "/") return Errno::kInval;
  if (src_canon == dst_canon) return Status::Ok();
  // Refuse to move a directory into its own subtree.
  if (path_is_ancestor(src_canon, dst_canon)) return Errno::kInval;

  RAEFS_TRY(ParentRef src_ref, resolve_parent(src_canon));
  RAEFS_TRY(ParentRef dst_ref, resolve_parent(dst_canon));
  if (!name_valid(dst_ref.leaf)) {
    return dst_ref.leaf.size() > kMaxNameLen ? Errno::kNameTooLong
                                             : Errno::kInval;
  }

  RAEFS_TRY(DiskInode src_parent, get_inode(src_ref.parent));
  RAEFS_TRY(auto src_entry, dir_find(src_ref.parent, src_parent,
                                     src_ref.leaf));
  if (!src_entry) return Errno::kNoEnt;

  RAEFS_TRY(DiskInode dst_parent, get_inode(dst_ref.parent));
  RAEFS_TRY(auto dst_entry, dir_find(dst_ref.parent, dst_parent,
                                     dst_ref.leaf));

  Ino victim_dir = kInvalidIno;
  if (dst_entry) {
    if (dst_entry->ino == src_entry->ino) return Status::Ok();
    bug_site("basefs.rename.overwrite", OpKind::kRename, dst_canon,
             dst_entry->ino, 0, 0);
    if (dst_entry->type == FileType::kDirectory) {
      if (src_entry->type != FileType::kDirectory) return Errno::kIsDir;
      RAEFS_TRY(DiskInode victim, get_inode(dst_entry->ino));
      RAEFS_TRY(bool empty, dir_empty(victim));
      if (!empty) return Errno::kNotEmpty;
      RAEFS_TRY_VOID(dir_remove(dst_ref.parent, &dst_parent, dst_ref.leaf));
      BASE_BUG_ON(dst_parent.nlink <= 2, "BaseFs::rename",
                  "dst parent nlink underflow");
      --dst_parent.nlink;
      // Persist the decrement now: both follow-up paths re-read the parent
      // from the inode table, so a change left only in this local copy
      // would be silently lost.
      put_inode(dst_ref.parent, dst_parent);
      RAEFS_TRY_VOID(free_file_blocks(&victim, 0));
      RAEFS_TRY_VOID(free_inode(dst_entry->ino));
      victim_dir = dst_entry->ino;
    } else {
      if (src_entry->type == FileType::kDirectory) return Errno::kNotDir;
      RAEFS_TRY(DiskInode victim, get_inode(dst_entry->ino));
      RAEFS_TRY_VOID(dir_remove(dst_ref.parent, &dst_parent, dst_ref.leaf));
      BASE_BUG_ON(victim.nlink == 0, "BaseFs::rename", "nlink underflow");
      --victim.nlink;
      if (victim.nlink == 0) {
        RAEFS_TRY_VOID(free_file_blocks(&victim, 0));
        RAEFS_TRY_VOID(free_inode(dst_entry->ino));
      } else {
        put_inode(dst_entry->ino, victim);
      }
    }
  }

  // Insert the destination entry before removing the source one: a
  // failure growing the destination directory must leave the file
  // reachable under its old name, not orphaned with a dangling nlink.
  // Same-parent rename must mutate one shared inode image, not two copies.
  if (src_ref.parent == dst_ref.parent) {
    RAEFS_TRY(DiskInode parent, get_inode(src_ref.parent));
    DirEntry moved = *src_entry;
    moved.name = dst_ref.leaf;
    RAEFS_TRY_VOID(dir_insert(src_ref.parent, &parent, moved, dst_canon));
    Status removed = dir_remove(src_ref.parent, &parent, src_ref.leaf);
    if (!removed.ok()) {
      (void)dir_remove(src_ref.parent, &parent, dst_ref.leaf);
      put_inode(src_ref.parent, parent);  // keep any directory growth owned
      return removed;
    }
    parent.mtime = clock_ ? clock_->now() : 0;
    put_inode(src_ref.parent, parent);
  } else {
    // Re-read parents: overwrite handling above may have modified them.
    RAEFS_TRY(DiskInode sp, get_inode(src_ref.parent));
    RAEFS_TRY(DiskInode dp, get_inode(dst_ref.parent));
    DirEntry moved = *src_entry;
    moved.name = dst_ref.leaf;
    RAEFS_TRY_VOID(dir_insert(dst_ref.parent, &dp, moved, dst_canon));
    Status removed = dir_remove(src_ref.parent, &sp, src_ref.leaf);
    if (!removed.ok()) {
      (void)dir_remove(dst_ref.parent, &dp, dst_ref.leaf);
      put_inode(dst_ref.parent, dp);  // keep any directory growth owned
      return removed;
    }
    if (src_entry->type == FileType::kDirectory) {
      BASE_BUG_ON(sp.nlink <= 2, "BaseFs::rename", "src parent nlink");
      --sp.nlink;
      ++dp.nlink;
    }
    Nanos now = clock_ ? clock_->now() : 0;
    sp.mtime = now;
    dp.mtime = now;
    put_inode(src_ref.parent, sp);
    put_inode(dst_ref.parent, dp);
  }

  if (opts_.use_dentry_cache) {
    dentry_cache_.invalidate(src_ref.parent, src_ref.leaf);
    dentry_cache_.insert_negative(src_ref.parent, src_ref.leaf);
    dentry_cache_.invalidate(dst_ref.parent, dst_ref.leaf);
    if (victim_dir != kInvalidIno) {
      // The victim directory's inode is gone and its number can be
      // reused; stale child entries (positive or negative) keyed by it
      // would poison later lookups under the reincarnated inode.
      dentry_cache_.invalidate_dir(victim_dir);
    }
    dentry_cache_.insert(dst_ref.parent, dst_ref.leaf, src_entry->ino,
                         src_entry->type);
  }
  return Status::Ok();
}

Status BaseFs::link(std::string_view existing, std::string_view newpath) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kLink, existing, 0, 0, 0);
  std::unique_lock ns(namespace_mu_);

  RAEFS_TRY(Ino target, resolve(existing));
  RAEFS_TRY(DiskInode node, get_inode(target));
  if (node.type == FileType::kDirectory) return Errno::kIsDir;
  if (node.nlink >= kMaxNlink) return Errno::kMLink;

  RAEFS_TRY(ParentRef ref, resolve_parent(newpath));
  if (!name_valid(ref.leaf)) {
    return ref.leaf.size() > kMaxNameLen ? Errno::kNameTooLong : Errno::kInval;
  }
  RAEFS_TRY(DiskInode parent, get_inode(ref.parent));
  RAEFS_TRY(auto entry, dir_find(ref.parent, parent, ref.leaf));
  if (entry) return Errno::kExist;

  DirEntry new_entry;
  new_entry.ino = target;
  new_entry.type = node.type;
  new_entry.name = ref.leaf;
  RAEFS_TRY_VOID(dir_insert(ref.parent, &parent, new_entry, newpath));
  parent.mtime = clock_ ? clock_->now() : 0;
  put_inode(ref.parent, parent);

  ++node.nlink;
  node.ctime = clock_ ? clock_->now() : 0;
  put_inode(target, node);

  if (opts_.use_dentry_cache) {
    dentry_cache_.invalidate(ref.parent, ref.leaf);
    dentry_cache_.insert(ref.parent, ref.leaf, target, node.type);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// readdir / stat / readlink
// ---------------------------------------------------------------------------

Result<std::vector<DirEntry>> BaseFs::readdir(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  bug_site("basefs.op.dispatch", OpKind::kReaddir, path, 0, 0, 0);
  std::shared_lock ns(namespace_mu_);

  RAEFS_TRY(Ino ino, resolve(path));
  RAEFS_TRY(DiskInode dir, get_inode(ino));
  if (dir.type != FileType::kDirectory) return Errno::kNotDir;

  std::vector<DirEntry> out;
  uint64_t nblocks = dir.size_blocks();
  for (uint64_t fb = 0; fb < nblocks; ++fb) {
    RAEFS_TRY(BlockNo b, map_block(&dir, fb, /*alloc=*/false));
    if (b == 0) continue;
    RAEFS_TRY(auto data, block_cache_.read(b));
    auto entries = dirent_scan_block(data);
    BASE_BUG_ON(!entries.ok(), "BaseFs::readdir",
                "malformed directory entry");
    for (auto& e : entries.value()) out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

Result<StatResult> BaseFs::stat(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  std::shared_lock ns(namespace_mu_);
  RAEFS_TRY(Ino ino, resolve(path));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  return StatResult{ino, node.type, node.size, node.nlink, node.mode,
                    node.generation};
}

Result<StatResult> BaseFs::stat_ino(Ino ino) {
  std::shared_lock gate(op_gate_);
  charge_op();
  if (!geo_.ino_valid(ino)) return Errno::kInval;
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (!node.in_use()) return Errno::kNoEnt;
  return StatResult{ino, node.type, node.size, node.nlink, node.mode,
                    node.generation};
}

Result<std::string> BaseFs::readlink(std::string_view path) {
  std::shared_lock gate(op_gate_);
  charge_op();
  std::shared_lock ns(namespace_mu_);
  RAEFS_TRY(Ino ino, resolve(path));
  RAEFS_TRY(DiskInode node, get_inode(ino));
  if (node.type != FileType::kSymlink) return Errno::kInval;
  RAEFS_TRY(BlockNo b, map_block(&node, 0, /*alloc=*/false));
  if (b == 0 || node.size == 0 || node.size > kBlockSize) {
    return Errno::kCorrupt;
  }
  RAEFS_TRY(auto data, block_cache_.read(b));
  return std::string(reinterpret_cast<const char*>(data.data()), node.size);
}

}  // namespace raefs
