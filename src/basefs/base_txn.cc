// Transaction engine of the base filesystem: stop-the-world commits that
// write file data in place (ordered mode), journal metadata, checkpoint
// under journal pressure, validate dirty metadata before it can persist
// (the paper's detect-before-persist enhancement, §3.1), and absorb the
// shadow's recovery output (metadata download, §3.2).
#include <algorithm>
#include <atomic>
#include <cstring>

#include "basefs/base_fs.h"
#include "obs/flight_recorder.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace raefs {

Status BaseFs::commit_txn(bool force_checkpoint) {
  obs::TraceSpan span(obs::kSpanBaseCommit, clock_.get());
  // Draining every in-flight op is the commit's lock wait; measured as a
  // child span so the watchdog can report it apart from journal work.
  obs::TraceSpan lock_wait(obs::kSpanBaseLockWait, clock_.get());
  std::unique_lock gate(op_gate_);  // exclusive: drain all in-flight ops
  lock_wait.end();
  Seq durable_seq = max_dirty_seq_.load();

  RAEFS_TRY_VOID(flush_inode_cache_locked());
  auto dirty = block_cache_.dirty_snapshot();
  if (dirty.empty()) {
    if (durable_cb_ && durable_seq > 0) durable_cb_(durable_seq);
    return Status::Ok();
  }

  if (opts_.validate_on_sync) {
    Status valid = validate_dirty_locked(dirty);
    // Detection before persistence: a corrupt dirty set must never reach
    // the device. Panic; the RAE supervisor recovers from S0 + op log.
    BASE_BUG_ON(!valid.ok(), "basefs.validate_on_sync",
                "dirty metadata failed validation before persist");
  }

  // Partition the dirty set. Snapshot entries are shared handles out of
  // the cache -- nothing here copies a block payload.
  std::vector<JournalRecord> meta;
  std::vector<std::pair<BlockNo, BlockBufPtr>> data;
  for (auto& [block, bytes] : dirty) {
    if (is_meta_block(block)) {
      meta.push_back(JournalRecord{block, std::move(bytes)});
    } else {
      data.emplace_back(block, std::move(bytes));
    }
  }

  // Ordered mode: file data reaches the device before the metadata that
  // references it commits. Contiguous runs go down as single coalesced
  // submissions.
  if (!data.empty()) {
    RAEFS_TRY_VOID(writeback_coalesced(data));
    RAEFS_TRY_VOID(dev_->flush());
    std::vector<BlockNo> data_blocks;
    data_blocks.reserve(data.size());
    for (const auto& [block, bytes] : data) data_blocks.push_back(block);
    block_cache_.mark_clean(data_blocks);
  }

  if (!meta.empty()) {
    obs::TraceSpan jspan(obs::kSpanJournalCommit, clock_.get(), span.id());
    // The journal must fit the transaction. Like jbd2, an oversized
    // transaction is split into capacity-sized chunks with a checkpoint
    // between them (each chunk is internally atomic).
    size_t max_records = geo_.journal_blocks > 4
                             ? static_cast<size_t>(geo_.journal_blocks - 3)
                             : 1;
    size_t at = 0;
    while (at < meta.size()) {
      size_t take = std::min(meta.size() - at, max_records);
      std::vector<JournalRecord> chunk(
          std::make_move_iterator(meta.begin() + static_cast<ptrdiff_t>(at)),
          std::make_move_iterator(
              meta.begin() + static_cast<ptrdiff_t>(at + take)));
      if (!journal_.has_space(chunk.size())) {
        RAEFS_TRY_VOID(checkpoint_locked());
      }
      auto seq = journal_.commit(chunk);
      if (!seq.ok()) return seq.error();
      at += take;
    }
  }
  commits_.fetch_add(1);
  obs::flight().record(obs::Component::kBaseFs, "commit", "",
                       clock_ ? clock_->now() : 0, dirty.size());

  if (force_checkpoint ||
      journal_.fill_ratio() > opts_.checkpoint_fill_threshold) {
    RAEFS_TRY_VOID(checkpoint_locked());
  }

  if (durable_cb_ && durable_seq > 0) durable_cb_(durable_seq);
  return Status::Ok();
}

Status BaseFs::checkpoint_locked() {
  obs::TraceSpan span(obs::kSpanBaseCheckpoint, clock_.get());
  // Write every dirty metadata block in place. All of them have been
  // journaled by a committed transaction (commit_txn journals the full
  // dirty metadata set each time), so in-place writes cannot violate WAL.
  auto dirty = block_cache_.dirty_snapshot();
  std::vector<BlockNo> written;
  written.reserve(dirty.size());
  for (const auto& [block, bytes] : dirty) written.push_back(block);
  RAEFS_TRY_VOID(writeback_coalesced(dirty));
  RAEFS_TRY_VOID(dev_->flush());
  RAEFS_TRY_VOID(journal_.checkpoint());
  block_cache_.mark_clean(written);
  checkpoints_.fetch_add(1);
  obs::flight().record(obs::Component::kBaseFs, "checkpoint", "",
                       clock_ ? clock_->now() : 0, written.size());
  return Status::Ok();
}

Status BaseFs::writeback_coalesced(
    const std::vector<std::pair<BlockNo, BlockBufPtr>>& blocks) {
  if (blocks.empty()) return Status::Ok();
  obs::TraceSpan span(obs::kSpanBlockdevWriteback, clock_.get());
  // Sort by block number, group contiguous runs, and hand each run to the
  // async layer as one submission. Payloads are shared, never copied.
  std::vector<std::pair<BlockNo, BlockBufPtr>> sorted(blocks);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::atomic<bool> io_failed{false};
  size_t i = 0;
  while (i < sorted.size()) {
    BlockNo first = sorted[i].first;
    std::vector<BlockBufPtr> run;
    run.push_back(sorted[i].second);
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j].first == first + run.size()) {
      run.push_back(sorted[j].second);
      ++j;
    }
    async_.submit_writev(first, std::move(run), [&](Status st) {
      if (!st.ok()) io_failed.store(true);
    });
    i = j;
  }
  async_.drain();
  if (io_failed.load()) return Errno::kIo;
  return Status::Ok();
}

Status BaseFs::validate_dirty_locked(
    const std::vector<std::pair<BlockNo, BlockBufPtr>>& dirty) {
  bool bitmap_touched = false;
  for (const auto& [block, bytes] : dirty) {
    if (block == 0) {
      if (!Superblock::decode(*bytes).ok()) return Errno::kCorrupt;
    } else if (block >= geo_.inode_table_start &&
               block < geo_.inode_table_start + geo_.inode_table_blocks) {
      for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
        auto inode = DiskInode::decode(
            std::span<const uint8_t>(*bytes).subspan(slot * kInodeSize,
                                                     kInodeSize),
            geo_);
        if (!inode.ok()) return Errno::kCorrupt;
      }
    } else if ((block >= geo_.inode_bitmap_start &&
                block < geo_.inode_bitmap_start + geo_.inode_bitmap_blocks) ||
               (block >= geo_.block_bitmap_start &&
                block < geo_.block_bitmap_start + geo_.block_bitmap_blocks)) {
      bitmap_touched = true;
    } else if (geo_.is_data_block(block)) {
      std::lock_guard<std::mutex> lk(meta_blocks_mu_);
      auto it = meta_blocks_.find(block);
      if (it == meta_blocks_.end()) continue;  // file data: not validated
      if (it->second == BlockClass::kDirMeta) {
        if (!dirent_scan_block(*bytes).ok()) return Errno::kCorrupt;
      } else if (it->second == BlockClass::kIndirectMeta) {
        for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
          uint64_t ptr = 0;
          std::memcpy(&ptr, bytes->data() + i * 8, sizeof(ptr));
          if (ptr != 0 && !geo_.is_data_block(ptr)) return Errno::kCorrupt;
        }
      }
    }
  }

  if (bitmap_touched) {
    // Cross-check the in-memory free counters against the cached bitmaps:
    // catches silent single-bit corruption of allocation state.
    uint64_t free_b = 0;
    for (uint64_t i = 0; i < geo_.block_bitmap_blocks; ++i) {
      RAEFS_TRY(auto data, block_cache_.read(geo_.block_bitmap_start + i));
      uint64_t bits_here = std::min<uint64_t>(
          kBitsPerBlock, geo_.total_blocks - i * kBitsPerBlock);
      ConstBitmapView view(data, bits_here);
      free_b += bits_here - view.count_set();
    }
    if (free_b != free_blocks_.load()) return Errno::kCorrupt;

    uint64_t free_i = 0;
    for (uint64_t i = 0; i < geo_.inode_bitmap_blocks; ++i) {
      RAEFS_TRY(auto data, block_cache_.read(geo_.inode_bitmap_start + i));
      uint64_t bits_here = std::min<uint64_t>(
          kBitsPerBlock, geo_.inode_count - i * kBitsPerBlock);
      ConstBitmapView view(data, bits_here);
      free_i += bits_here - view.count_set();
    }
    if (free_i != free_inodes_.load()) return Errno::kCorrupt;
  }
  return Status::Ok();
}

Status BaseFs::install_blocks(const std::vector<InstallBlock>& blocks) {
  // Called by the supervisor on a freshly mounted (rebooted) base with no
  // concurrent operations. Reuses the ordinary cache + commit machinery,
  // as the paper prescribes for the hand-off interface (§3.2).
  for (const auto& ib : blocks) {
    if (ib.block >= geo_.total_blocks || ib.data.size() != kBlockSize) {
      return Errno::kInval;
    }
    if (ib.block >= geo_.journal_start &&
        ib.block < geo_.journal_start + geo_.journal_blocks) {
      return Errno::kInval;  // the shadow never produces journal blocks
    }
    RAEFS_TRY_VOID(block_cache_.write(ib.block, ib.data));
    if (geo_.is_data_block(ib.block)) note_meta_block(ib.block, ib.cls);
  }
  // Installed bitmaps invalidate cached derived state.
  inode_cache_.drop_all();
  dentry_cache_.drop_all();
  RAEFS_TRY_VOID(reload_counters());
  obs::flight().record(obs::Component::kBaseFs, "install_blocks", "",
                       clock_ ? clock_->now() : 0, blocks.size());
  // Make the recovered state durable before any new operation is admitted.
  return commit_txn(/*force_checkpoint=*/true);
}

}  // namespace raefs
