// Transaction engine of the base filesystem: epoch-based group commit
// over a pipelined journal. Operations tag the blocks they dirty with the
// open epoch; fsync/sync closes the open epoch (a brief rotation under
// op_gate_ that does no IO) and stages its dirty *delta* as one pipelined
// journal transaction -- N concurrent fsyncs collapse into one
// transaction, and transaction E+1 may write its descriptor/payload while
// E's commit record is still in flight. Checkpointing runs off the commit
// critical path. Validate-on-sync (the paper's detect-before-persist
// enhancement, §3.1) runs on each epoch's delta inside the rotation, and
// install_blocks absorbs the shadow's recovery output (§3.2).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "basefs/base_fs.h"
#include "blockdev/qdepth_probe.h"
#include "common/worker_pool.h"
#include "obs/flight_recorder.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace raefs {

namespace {

// Commit timing uses the sim clock when present (simulated ns, like every
// other _ns metric) and falls back to the monotonic clock in benches that
// run without one.
Nanos mono_now(const SimClock* clock) {
  if (clock != nullptr) return clock->now();
  return static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Histogram& commit_wait_hist() {
  static obs::Histogram* h = &obs::metrics().histogram(obs::kMBaseCommitWaitNs);
  return *h;
}

obs::Histogram& group_ops_hist() {
  static obs::Histogram* h =
      &obs::metrics().histogram(obs::kMBaseCommitGroupOps);
  return *h;
}

obs::Histogram& commit_latency_hist() {
  static obs::Histogram* h =
      &obs::metrics().histogram(obs::kMJournalCommitLatencyNs);
  return *h;
}

}  // namespace

// Everything a closed epoch needs to become durable, shared with the
// async completion callback. Block payloads are shared handles out of the
// cache snapshot -- nothing here copies block contents.
struct BaseFs::CommitCtx {
  uint64_t upto = 0;   // highest epoch this transaction covers
  Seq op_seq = 0;      // op-log watermark captured at rotation
  Nanos start = 0;
  std::vector<JournalRecord> meta;
  std::vector<BlockNo> data_blocks;
  // Journaled-metadata blocks freed by this epoch: carried as revoke
  // records so replay cannot resurrect their stale journaled copies
  // (journal.h). On a failed commit they return to the pending set.
  std::vector<BlockNo> revokes;
  // Set by a failed in-place (ordered-mode) data write; vetoes the commit.
  std::shared_ptr<std::atomic<bool>> data_abort;
};

Status BaseFs::commit_txn(bool force_checkpoint) {
  return commit_upto(epoch_open_.load(std::memory_order_acquire),
                     force_checkpoint);
}

Status BaseFs::commit_upto(uint64_t target_epoch, bool force_checkpoint) {
  obs::TraceSpan span(obs::kSpanBaseCommit, clock_.get());
  commit_waiters_.fetch_add(1, std::memory_order_relaxed);
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> lk(commit_mu_);
    for (;;) {
      // Durability first: an epoch that became durable satisfies this
      // waiter even if a *later* epoch has since failed.
      if (epoch_durable_ >= target_epoch) break;
      if (epoch_failed_ >= target_epoch) {
        st = commit_error_.ok() ? Status(Errno::kIo) : commit_error_;
        break;
      }
      if (!committer_busy_ &&
          (pipeline_broken_ || epoch_staged_ < target_epoch)) {
        committer_busy_ = true;
        Status cst;
        try {
          cst = commit_cycle_locked(lk);
        } catch (...) {
          // validate-on-sync panics unwind to the RAE supervisor; leave
          // the engine usable for the waiters we strand.
          if (!lk.owns_lock()) lk.lock();
          committer_busy_ = false;
          lk.unlock();
          commit_cv_.notify_all();
          commit_waiters_.fetch_sub(1, std::memory_order_relaxed);
          throw;
        }
        committer_busy_ = false;
        commit_cv_.notify_all();
        if (!cst.ok()) {
          st = cst;
          break;
        }
        continue;  // staged: durability arrives via the done callback
      }
      // Group commit: a transaction covering this epoch is staged (or
      // another thread is staging one) -- wait for it to turn durable.
      const Nanos wait_from = mono_now(clock_.get());
      {
        obs::TraceSpan wait(obs::kSpanBaseCommitWait, clock_.get(), span.id());
        commit_cv_.wait(lk);
      }
      commit_wait_hist().record(mono_now(clock_.get()) - wait_from);
    }
  }
  commit_waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (!st.ok()) return st;

  // Checkpoint off the commit critical path: every waiter on this epoch
  // was already released by the done callback; only this caller pays.
  if (force_checkpoint ||
      journal_.fill_ratio() > opts_.checkpoint_fill_threshold) {
    std::unique_lock<std::mutex> lk(commit_mu_);
    return checkpoint_now_locked(lk, force_checkpoint);
  }
  return Status::Ok();
}

Status BaseFs::commit_cycle_locked(std::unique_lock<std::mutex>& lk) {
  for (int attempt = 0;; ++attempt) {
    Status st = commit_cycle_once_(lk);
    if (st.ok() || st.error() != Errno::kBusy || attempt >= 2) return st;
    // The journal refused with kBusy: an already-staged transaction failed
    // while this cycle was staging (the failure callback may not even have
    // run yet). This is transient engine state, not a device error -- it
    // must never surface to an fsync caller. Mark the pipeline broken and
    // go around: the recovery at the top of the next attempt drains the
    // queue, rewinds the journal, and re-stages everything still dirty.
    pipeline_broken_ = true;
  }
}

Status BaseFs::commit_cycle_once_(std::unique_lock<std::mutex>& lk) {
  uint64_t base = epoch_staged_;
  // journal_.pipeline_failed() is checked alongside our own flag because
  // it turns true under the journal's lock at the instant of failure,
  // while pipeline_broken_ only follows once the failure callback has
  // taken commit_mu_ -- without the early check this cycle would stage a
  // transaction into a doomed pipeline and share its abort.
  if (pipeline_broken_ || journal_.pipeline_failed()) {
    // Pipeline recovery: let the async queue settle (this also runs every
    // pending failure callback), rewind the journal to just past the last
    // durable transaction (failed transactions never wrote commit records,
    // so their remains are legal torn tail), and re-stage from scratch.
    lk.unlock();
    async_.drain();
    journal_.rewind_pipeline();
    lk.lock();
    epoch_staged_ = epoch_durable_;
    pipeline_broken_ = false;
    commit_error_ = Status::Ok();
    // Re-cover every dirty block regardless of its epoch tag: failed
    // epochs' blocks keep their old tags, and a privately-failed barrier
    // epoch (data_abort with no journal transaction to veto) may sit below
    // an epoch that still turned durable, so an epoch-bounded delta could
    // miss still-dirty blocks.
    base = 0;
  }
  lk.unlock();

  auto ctx = std::make_shared<CommitCtx>();
  ctx->start = mono_now(clock_.get());
  std::vector<std::pair<BlockNo, BlockBufPtr>> dirty;
  Status stage_st = Status::Ok();
  {
    // Epoch rotation: the only moment ops are excluded, and it does no
    // device IO. Capture inode-cache dirt into the block cache, close the
    // epoch, snapshot its delta, and validate the delta while nothing can
    // re-dirty it.
    obs::TraceSpan lock_wait(obs::kSpanBaseLockWait, clock_.get());
    std::unique_lock<std::shared_mutex> gate(op_gate_);
    lock_wait.end();
    ctx->op_seq = max_dirty_seq_.load();
    stage_st = flush_inode_cache_locked();
    ctx->upto = epoch_open_.load(std::memory_order_relaxed);
    epoch_open_.store(ctx->upto + 1, std::memory_order_release);
    block_cache_.set_open_epoch(ctx->upto + 1);
    if (stage_st.ok()) {
      dirty = block_cache_.dirty_snapshot_range(base, ctx->upto);
      // Frees performed by epochs <= upto are all visible here (ops hold
      // the gate shared), so the revoke set is exactly this delta's.
      ctx->revokes = take_pending_revokes_();
      if (opts_.validate_on_sync && !dirty.empty()) {
        Status valid = validate_dirty_locked(dirty);
        // Detection before persistence: a corrupt delta must never reach
        // the device. Panic; RAE recovers from S0 + op log.
        BASE_BUG_ON(!valid.ok(), "basefs.validate_on_sync",
                    "dirty metadata failed validation before persist");
      }
    }
  }
  if (!stage_st.ok()) {
    lk.lock();
    // The rotation already happened: epoch `upto` is closed but unstaged.
    // epoch_staged_ stays at `base` so the next committer's delta
    // re-covers it; mark it failed so current waiters see the error.
    epoch_failed_ = std::max(epoch_failed_, ctx->upto);
    commit_error_ = stage_st;
    return stage_st;
  }

  if (dirty.empty()) {
    // No journal transaction will be staged; the revokes wait for the
    // next one. (A free always dirties the block bitmap, so this arises
    // only on retry after a failure that committed the bitmap first.)
    return_pending_revokes_(ctx->revokes);
    ctx->revokes.clear();
    lk.lock();
    epoch_staged_ = std::max(epoch_staged_, ctx->upto);
    if (journal_.staged_txns() == 0) {
      // Nothing dirty and the pipeline is idle: trivially durable.
      epoch_durable_ = std::max(epoch_durable_, ctx->upto);
      if (durable_cb_ && ctx->op_seq > 0) durable_cb_(ctx->op_seq);
      return Status::Ok();
    }
    // Earlier transactions still in flight: ride a barrier through the
    // pipeline so this epoch turns durable strictly after them.
    lk.unlock();
    Status fst = journal_.flush_async(&async_, make_commit_done_(ctx));
    lk.lock();
    if (!fst.ok()) {
      if (fst.error() == Errno::kBusy) return fst;  // retry loop recovers
      epoch_failed_ = std::max(epoch_failed_, ctx->upto);
      commit_error_ = fst;
      return fst;
    }
    return Status::Ok();
  }

  obs::TraceSpan jspan(obs::kSpanJournalGroupCommit, clock_.get());
  // Partition the delta. Snapshot entries are shared handles out of the
  // cache -- nothing here copies a block payload.
  std::vector<std::pair<BlockNo, BlockBufPtr>> data;
  for (auto& [block, bytes] : dirty) {
    if (is_meta_block(block)) {
      ctx->meta.emplace_back(block, std::move(bytes));
    } else {
      ctx->data_blocks.push_back(block);
      data.emplace_back(block, std::move(bytes));
    }
  }
  // A revoke must not suppress a copy re-journaled by this very
  // transaction (same seq): the fresh copy is the block's newest durable
  // content. jbd2 calls this revoke cancellation.
  if (!ctx->revokes.empty() && !ctx->meta.empty()) {
    std::unordered_set<BlockNo> journaled;
    journaled.reserve(ctx->meta.size());
    for (const auto& r : ctx->meta) journaled.insert(r.target);
    std::erase_if(ctx->revokes,
                  [&](BlockNo b) { return journaled.count(b) > 0; });
  }
  // How many fsyncs this transaction collapses (the committer included).
  group_ops_hist().record(
      static_cast<Nanos>(commit_waiters_.load(std::memory_order_relaxed)));

  // Ordered mode, pipelined: submit the in-place data writes now. The
  // journal payload flush barrier queued behind them proves them durable
  // before this epoch's commit record can reach the device; a data write
  // error vetoes the commit through data_abort.
  if (!data.empty()) {
    ctx->data_abort = std::make_shared<std::atomic<bool>>(false);
    auto flag = ctx->data_abort;
    submit_writeback_runs(std::move(data), [flag](Status wst) {
      if (!wst.ok()) flag->store(true, std::memory_order_release);
    });
  }

  if (ctx->meta.empty()) {
    // Data-only epoch: a durability barrier is all the journal owes us.
    // Revokes wait for the next metadata transaction (any reallocation of
    // a revoked block dirties the bitmap, so that transaction commits no
    // later than the first epoch that could make the hazard durable).
    return_pending_revokes_(ctx->revokes);
    ctx->revokes.clear();
    Status fst = journal_.flush_async(&async_, make_commit_done_(ctx));
    lk.lock();
    if (!fst.ok()) {
      if (fst.error() == Errno::kBusy) return fst;  // retry loop recovers
      epoch_failed_ = std::max(epoch_failed_, ctx->upto);
      commit_error_ = fst;
      return fst;
    }
    epoch_staged_ = std::max(epoch_staged_, ctx->upto);
    return Status::Ok();
  }

  // One descriptor block addresses max_descriptor_entries() tags+revokes;
  // the journal free area must also fit the transaction right now (staged
  // transactions included). Otherwise fall back to the serial bulk path.
  const size_t pipeline_max = std::min<size_t>(
      Journal::max_descriptor_entries(),
      geo_.journal_blocks > 4 ? static_cast<size_t>(geo_.journal_blocks - 3)
                              : 1);
  if (ctx->meta.size() + ctx->revokes.size() > pipeline_max ||
      !journal_.has_space(ctx->meta.size())) {
    return commit_bulk_(lk, ctx);
  }

  auto seq = journal_.commit_async(ctx->meta, &async_, make_commit_done_(ctx),
                                   ctx->data_abort, ctx->revokes);
  if (!seq.ok() && seq.error() == Errno::kNoSpace) return commit_bulk_(lk, ctx);
  lk.lock();
  if (!seq.ok()) {
    // kBusy propagates to commit_cycle_locked's retry loop; the rotation
    // already closed epoch `upto`, and the recovery resnap (base 0) on the
    // next attempt re-covers its blocks. Anything else fails the epoch.
    return_pending_revokes_(ctx->revokes);
    if (seq.error() == Errno::kBusy) return seq.error();
    epoch_failed_ = std::max(epoch_failed_, ctx->upto);
    commit_error_ = seq.error();
    return commit_error_;
  }
  epoch_staged_ = std::max(epoch_staged_, ctx->upto);
  return Status::Ok();
}

Journal::CommitDoneCb BaseFs::make_commit_done_(std::shared_ptr<CommitCtx> ctx) {
  return [this, ctx = std::move(ctx)](Status st, uint64_t) {
    if (st.ok() && ctx->data_abort &&
        ctx->data_abort->load(std::memory_order_acquire)) {
      // Barrier epochs carry no journal transaction to veto; a failed
      // in-place data write must still fail the epoch (and break the
      // pipeline so recovery re-stages the still-dirty blocks).
      st = Errno::kIo;
    }
    {
      std::lock_guard<std::mutex> g(commit_mu_);
      if (st.ok()) {
        // Record each block's durable classification in commit order; the
        // checkpointer skips journaled copies superseded by a later
        // in-place data write (freed-then-reallocated blocks).
        for (const auto& r : ctx->meta) durable_class_[r.target] = false;
        if (!ctx->data_blocks.empty()) {
          block_cache_.mark_clean_upto(ctx->data_blocks, ctx->upto);
          for (BlockNo b : ctx->data_blocks) durable_class_[b] = true;
        }
        epoch_durable_ = std::max(epoch_durable_, ctx->upto);
        if (!ctx->meta.empty() || !ctx->data_blocks.empty()) {
          commits_.fetch_add(1);
          commit_latency_hist().record(mono_now(clock_.get()) - ctx->start);
        }
        if (durable_cb_ && ctx->op_seq > 0) durable_cb_(ctx->op_seq);
      } else {
        pipeline_broken_ = true;
        epoch_failed_ = std::max(epoch_failed_, ctx->upto);
        commit_error_ = st;
        // The staged transaction never committed, so neither did its
        // revokes; the retry's transaction must carry them again.
        return_pending_revokes_(ctx->revokes);
      }
    }
    commit_cv_.notify_all();
    if (st.ok() && (!ctx->meta.empty() || !ctx->data_blocks.empty())) {
      obs::flight().record(obs::Component::kBaseFs, "commit", "",
                           clock_ ? clock_->now() : 0,
                           ctx->meta.size() + ctx->data_blocks.size());
    }
  };
}

Status BaseFs::commit_bulk_(std::unique_lock<std::mutex>& lk,
                            const std::shared_ptr<CommitCtx>& ctx) {
  // Serial fallback for deltas that cannot ride the pipeline (more records
  // than one descriptor addresses, or the free area is exhausted by staged
  // transactions). Wait the pipeline idle, then commit in capacity-sized
  // chunks with checkpoints in between -- like jbd2 splitting an
  // oversized transaction; each chunk is internally atomic.
  lk.lock();
  while (epoch_durable_ < epoch_staged_ && !pipeline_broken_) {
    commit_cv_.wait(lk);
  }
  if (pipeline_broken_) {
    epoch_failed_ = std::max(epoch_failed_, ctx->upto);
    if (commit_error_.ok()) commit_error_ = Errno::kIo;
    return_pending_revokes_(ctx->revokes);
    return commit_error_;
  }
  lk.unlock();
  async_.drain();

  Status st = Status::Ok();
  if (ctx->data_abort && ctx->data_abort->load(std::memory_order_acquire)) {
    st = Errno::kIo;  // this epoch's in-place data writes failed
  }
  const size_t max_records = std::min<size_t>(
      Journal::max_descriptor_entries(),
      geo_.journal_blocks > 4 ? static_cast<size_t>(geo_.journal_blocks - 3)
                              : 1);
  // Revokes ride the chunks' descriptors, front-loaded but never crowding
  // a chunk's records out entirely; leftovers (failure, or a pathological
  // revoke count) return to the pending set.
  std::vector<BlockNo> revokes_left = ctx->revokes;
  size_t at = 0;
  while (st.ok() && at < ctx->meta.size()) {
    const size_t rev_take =
        std::min(revokes_left.size(), max_records > 1 ? max_records - 1 : 0);
    const size_t take = std::min(ctx->meta.size() - at, max_records - rev_take);
    std::vector<JournalRecord> chunk(
        ctx->meta.begin() + static_cast<ptrdiff_t>(at),
        ctx->meta.begin() + static_cast<ptrdiff_t>(at + take));
    std::vector<BlockNo> rev(
        revokes_left.begin(),
        revokes_left.begin() + static_cast<ptrdiff_t>(rev_take));
    if (!journal_.has_space(chunk.size())) {
      st = checkpoint_core_();
      if (!st.ok()) break;
    }
    auto seq = journal_.commit(chunk, rev);
    if (!seq.ok()) {
      st = seq.error();
      break;
    }
    revokes_left.erase(
        revokes_left.begin(),
        revokes_left.begin() + static_cast<ptrdiff_t>(rev_take));
    {
      std::lock_guard<std::mutex> g(commit_mu_);
      for (const auto& r : chunk) durable_class_[r.target] = false;
    }
    at += take;
  }
  return_pending_revokes_(revokes_left);

  lk.lock();
  if (!st.ok()) {
    // Chunks already committed stay durable in the journal and shadow
    // (each was atomic); the epoch as a whole failed and its delta will
    // be re-staged on retry.
    epoch_failed_ = std::max(epoch_failed_, ctx->upto);
    commit_error_ = st;
    return st;
  }
  // The first journal flush ran after the drained data writes, so the
  // whole epoch is durable.
  if (!ctx->data_blocks.empty()) {
    block_cache_.mark_clean_upto(ctx->data_blocks, ctx->upto);
    for (BlockNo b : ctx->data_blocks) durable_class_[b] = true;
  }
  epoch_staged_ = std::max(epoch_staged_, ctx->upto);
  epoch_durable_ = std::max(epoch_durable_, ctx->upto);
  commits_.fetch_add(1);
  commit_latency_hist().record(mono_now(clock_.get()) - ctx->start);
  if (durable_cb_ && ctx->op_seq > 0) durable_cb_(ctx->op_seq);
  obs::flight().record(obs::Component::kBaseFs, "commit", "",
                       clock_ ? clock_->now() : 0,
                       ctx->meta.size() + ctx->data_blocks.size());
  return Status::Ok();
}

Status BaseFs::checkpoint_now_locked(std::unique_lock<std::mutex>& lk,
                                     bool force) {
  while (committer_busy_) commit_cv_.wait(lk);
  if (!force && journal_.fill_ratio() <= opts_.checkpoint_fill_threshold) {
    return Status::Ok();  // raced: another caller already checkpointed
  }
  committer_busy_ = true;
  while (epoch_durable_ < epoch_staged_ && !pipeline_broken_) {
    commit_cv_.wait(lk);
  }
  Status st = Status::Ok();
  if (pipeline_broken_) {
    // A later epoch failed after this caller's target turned durable.
    // Optional checkpoints skip quietly; forced ones (unmount) must
    // report the failure so a dirty journal never meets a clean
    // superblock.
    if (force) st = commit_error_.ok() ? Status(Errno::kIo) : commit_error_;
  } else {
    lk.unlock();
    async_.drain();
    st = checkpoint_core_();
    lk.lock();
  }
  committer_busy_ = false;
  lk.unlock();
  commit_cv_.notify_all();
  return st;
}

Status BaseFs::checkpoint_core_() {
  obs::TraceSpan span(obs::kSpanBaseCheckpoint, clock_.get());
  // Write the last durably-journaled copy of every journaled block in
  // place, re-read from the journal region itself. Using the journaled
  // copies -- not current cache content -- keeps WAL intact: a block
  // re-dirtied by a later, still-open epoch must not reach its home
  // location before that epoch commits. Reading them back (instead of
  // retaining cache handles across epochs) keeps the steady-state commit
  // path free of copy-on-write clones.
  RAEFS_TRY(auto records, journal_.committed_records());
  uint64_t durable = 0;
  std::vector<std::pair<BlockNo, BlockBufPtr>> blocks;
  std::vector<BlockNo> keys;
  {
    std::lock_guard<std::mutex> g(commit_mu_);
    blocks.reserve(records.size());
    keys.reserve(records.size());
    for (auto& r : records) {
      auto it = durable_class_.find(r.target);
      if (it != durable_class_.end() && it->second) {
        // Freed and reallocated as file data after it was journaled; the
        // durable in-place data write supersedes the journaled copy.
        continue;
      }
      blocks.emplace_back(r.target, std::move(r.data));
      keys.push_back(r.target);
    }
    durable = epoch_durable_;
  }
  RAEFS_TRY_VOID(writeback_coalesced(blocks));
  RAEFS_TRY_VOID(dev_->flush());
  RAEFS_TRY_VOID(journal_.checkpoint());
  {
    std::lock_guard<std::mutex> g(commit_mu_);
    // Only entries not re-dirtied by a later epoch turn clean; the
    // epoch-bounded form makes the concurrent-redirty race harmless.
    block_cache_.mark_clean_upto(keys, durable);
    durable_class_.clear();
  }
  checkpoints_.fetch_add(1);
  obs::flight().record(obs::Component::kBaseFs, "checkpoint", "",
                       clock_ ? clock_->now() : 0, keys.size());
  return Status::Ok();
}

void BaseFs::submit_writeback_runs(
    std::vector<std::pair<BlockNo, BlockBufPtr>> blocks,
    const std::function<void(Status)>& on_each) {
  obs::TraceSpan span(obs::kSpanBlockdevWriteback, clock_.get());
  // Sort by block number, group contiguous runs, and hand each run to the
  // async layer as one submission. Payloads are shared, never copied.
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t i = 0;
  while (i < blocks.size()) {
    BlockNo first = blocks[i].first;
    std::vector<BlockBufPtr> run;
    run.push_back(blocks[i].second);
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j].first == first + run.size()) {
      run.push_back(blocks[j].second);
      ++j;
    }
    async_.submit_writev(first, std::move(run), on_each);
    i = j;
  }
}

Status BaseFs::writeback_coalesced(
    const std::vector<std::pair<BlockNo, BlockBufPtr>>& blocks) {
  if (blocks.empty()) return Status::Ok();
  auto failed = std::make_shared<std::atomic<bool>>(false);
  submit_writeback_runs(blocks, [failed](Status st) {
    if (!st.ok()) failed->store(true, std::memory_order_relaxed);
  });
  async_.drain();
  if (failed->load()) return Errno::kIo;
  return Status::Ok();
}

Status BaseFs::validate_dirty_locked(
    const std::vector<std::pair<BlockNo, BlockBufPtr>>& dirty) {
  bool bitmap_touched = false;
  for (const auto& [block, bytes] : dirty) {
    if (block == 0) {
      if (!Superblock::decode(*bytes).ok()) return Errno::kCorrupt;
    } else if (block >= geo_.inode_table_start &&
               block < geo_.inode_table_start + geo_.inode_table_blocks) {
      for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
        auto inode = DiskInode::decode(
            std::span<const uint8_t>(*bytes).subspan(slot * kInodeSize,
                                                     kInodeSize),
            geo_);
        if (!inode.ok()) return Errno::kCorrupt;
      }
    } else if ((block >= geo_.inode_bitmap_start &&
                block < geo_.inode_bitmap_start + geo_.inode_bitmap_blocks) ||
               (block >= geo_.block_bitmap_start &&
                block < geo_.block_bitmap_start + geo_.block_bitmap_blocks)) {
      bitmap_touched = true;
    } else if (geo_.is_data_block(block)) {
      std::lock_guard<std::mutex> lk(meta_blocks_mu_);
      auto it = meta_blocks_.find(block);
      if (it == meta_blocks_.end()) continue;  // file data: not validated
      if (it->second == BlockClass::kDirMeta) {
        if (!dirent_scan_block(*bytes).ok()) return Errno::kCorrupt;
      } else if (it->second == BlockClass::kIndirectMeta) {
        for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
          uint64_t ptr = 0;
          std::memcpy(&ptr, bytes->data() + i * 8, sizeof(ptr));
          if (ptr != 0 && !geo_.is_data_block(ptr)) return Errno::kCorrupt;
        }
      }
    }
  }

  if (bitmap_touched) {
    // Cross-check the in-memory free counters against the cached bitmaps:
    // catches silent single-bit corruption of allocation state. Runs
    // inside the rotation gate, so the counters cannot move under us.
    uint64_t free_b = 0;
    for (uint64_t i = 0; i < geo_.block_bitmap_blocks; ++i) {
      RAEFS_TRY(auto data, block_cache_.read(geo_.block_bitmap_start + i));
      uint64_t bits_here = std::min<uint64_t>(
          kBitsPerBlock, geo_.total_blocks - i * kBitsPerBlock);
      ConstBitmapView view(data, bits_here);
      free_b += bits_here - view.count_set();
    }
    if (free_b != free_blocks_.load()) return Errno::kCorrupt;

    uint64_t free_i = 0;
    for (uint64_t i = 0; i < geo_.inode_bitmap_blocks; ++i) {
      RAEFS_TRY(auto data, block_cache_.read(geo_.inode_bitmap_start + i));
      uint64_t bits_here = std::min<uint64_t>(
          kBitsPerBlock, geo_.inode_count - i * kBitsPerBlock);
      ConstBitmapView view(data, bits_here);
      free_i += bits_here - view.count_set();
    }
    if (free_i != free_inodes_.load()) return Errno::kCorrupt;
  }
  return Status::Ok();
}

Status BaseFs::install_blocks(const std::vector<InstallBlock>& blocks) {
  // Called by the supervisor on a freshly mounted (rebooted) base with no
  // concurrent operations (paper §3.2 hand-off). The bulk path journals
  // the whole set as ONE multi-chunk install transaction, applies it in
  // place through a worker pool, and checkpoints -- a power cut anywhere
  // in between replays to either the pre-install or the fully-installed
  // image, never a mix.
  for (const auto& ib : blocks) {
    if (ib.block >= geo_.total_blocks || ib.data.size() != kBlockSize) {
      return Errno::kInval;
    }
    if (ib.block >= geo_.journal_start &&
        ib.block < geo_.journal_start + geo_.journal_blocks) {
      return Errno::kInval;  // the shadow never produces journal blocks
    }
  }
  if (blocks.empty()) return install_blocks_legacy_(blocks);

  // Quiesce: drain the pipeline and checkpoint whatever the journal
  // already holds, so the checkpoint below cannot raise the floor over
  // some other transaction's committed-but-not-yet-in-place state.
  RAEFS_TRY_VOID(commit_txn(/*force_checkpoint=*/true));

  // Latest copy per target (the shadow's output is normally duplicate-
  // free; the dedup keeps the parallel apply race-free regardless),
  // sorted by block so apply slices are contiguous and never overlap.
  std::unordered_map<BlockNo, const InstallBlock*> latest;
  for (const auto& ib : blocks) latest[ib.block] = &ib;
  std::vector<const InstallBlock*> uniq;
  uniq.reserve(latest.size());
  for (const auto& [b, p] : latest) uniq.push_back(p);
  std::sort(uniq.begin(), uniq.end(),
            [](const InstallBlock* a, const InstallBlock* b) {
              return a->block < b->block;
            });

  if (opts_.validate_on_sync) {
    // Detection before persistence, same contract as the commit path's
    // validate_dirty_locked: a structurally corrupt shadow output must
    // never reach the journal or the device. The bitmap-vs-counter
    // cross-check is deliberately omitted -- installed bitmaps replace
    // the counters (reloaded below), so they legitimately disagree with
    // the pre-install values.
    Status valid = Status::Ok();
    for (const InstallBlock* ib : uniq) {
      valid = validate_install_block_(*ib);
      if (!valid.ok()) break;
    }
    BASE_BUG_ON(!valid.ok(), "basefs.validate_on_sync",
                "install set failed validation before persist");
  }

  std::vector<JournalRecord> records;
  records.reserve(uniq.size());
  for (const InstallBlock* ib : uniq) {
    records.emplace_back(ib->block, std::make_shared<const BlockBuf>(ib->data));
  }

  std::vector<BlockNo> revokes = take_pending_revokes_();
  std::vector<BlockNo> carried = revokes;
  // A revoke sharing the install transaction's sequence number would
  // suppress this very transaction's record for the block at replay:
  // re-journaled blocks are never revoked (same rule as group commit).
  std::erase_if(carried, [&](BlockNo b) { return latest.count(b) > 0; });

  const uint32_t workers = resolve_workers(opts_.install_workers, dev_);
  Result<uint64_t> seq = journal_.commit_multi(records, carried, workers);
  if (!seq.ok()) {
    // The set does not fit the journal region (or the engine refused):
    // fall back to the legacy cache-dirty path, which chunks through the
    // ordinary commit machinery.
    return_pending_revokes_(revokes);
    return install_blocks_legacy_(blocks);
  }

  // In-place apply, fanned across the device's usable queue depth.
  {
    obs::TraceSpan span(obs::kSpanBaseInstallApply, clock_.get());
    const size_t n = uniq.size();
    const size_t slices = std::min<size_t>(workers, n);
    std::atomic<bool> failed{false};
    WorkerPool pool(static_cast<uint32_t>(slices));
    pool.run(slices, [&](uint64_t s) {
      const size_t begin = s * n / slices;
      const size_t end = (s + 1) * n / slices;
      for (size_t i = begin; i < end; ++i) {
        if (!dev_->write_block(uniq[i]->block, uniq[i]->data).ok()) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
    // The journal still holds the committed install transaction, so a
    // failed apply is recoverable: the supervisor's retry replays it.
    if (failed.load()) return Errno::kIo;
  }
  RAEFS_TRY_VOID(dev_->flush());
  // Every record is in place and durable: retire the install transaction.
  RAEFS_TRY_VOID(journal_.checkpoint());

  // Warm the cache with the installed bytes (clean -- the device already
  // holds them), then invalidate only the derived state the set touches.
  std::vector<std::pair<BlockNo, BlockBufPtr>> cache_blocks;
  cache_blocks.reserve(records.size());
  for (const JournalRecord& r : records) {
    cache_blocks.emplace_back(r.target, r.data);
  }
  block_cache_.install_clean(cache_blocks);
  note_meta_blocks_batch_(blocks);
  RAEFS_TRY_VOID(invalidate_for_install_(blocks));

  commits_.fetch_add(1);
  checkpoints_.fetch_add(1);
  obs::flight().record(obs::Component::kBaseFs, "install_blocks", "bulk",
                       clock_ ? clock_->now() : 0, blocks.size(), workers);
  return Status::Ok();
}

Status BaseFs::validate_install_block_(const InstallBlock& ib) const {
  // Structural checks mirroring validate_dirty_locked, except the block
  // class comes from the shadow's annotation (ib.cls) instead of the
  // meta_blocks_ map -- the set is not noted until after the apply.
  const BlockNo block = ib.block;
  const BlockBuf& bytes = ib.data;
  if (block == 0) {
    if (!Superblock::decode(bytes).ok()) return Errno::kCorrupt;
  } else if (block >= geo_.inode_table_start &&
             block < geo_.inode_table_start + geo_.inode_table_blocks) {
    for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
      auto inode = DiskInode::decode(
          std::span<const uint8_t>(bytes).subspan(slot * kInodeSize,
                                                  kInodeSize),
          geo_);
      if (!inode.ok()) return Errno::kCorrupt;
    }
  } else if (geo_.is_data_block(block)) {
    if (ib.cls == BlockClass::kDirMeta) {
      if (!dirent_scan_block(bytes).ok()) return Errno::kCorrupt;
    } else if (ib.cls == BlockClass::kIndirectMeta) {
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t ptr = 0;
        std::memcpy(&ptr, bytes.data() + i * 8, sizeof(ptr));
        if (ptr != 0 && !geo_.is_data_block(ptr)) return Errno::kCorrupt;
      }
    }
  }
  return Status::Ok();
}

Status BaseFs::install_blocks_legacy_(const std::vector<InstallBlock>& blocks) {
  // Pre-bulk install path: dirty the blocks through the ordinary cache +
  // commit machinery. The caller has already validated the set.
  for (const auto& ib : blocks) {
    RAEFS_TRY_VOID(block_cache_.write(ib.block, ib.data));
    if (geo_.is_data_block(ib.block)) note_meta_block(ib.block, ib.cls);
  }
  // Installed bitmaps invalidate cached derived state.
  inode_cache_.drop_all();
  dentry_cache_.drop_all();
  RAEFS_TRY_VOID(reload_counters());
  obs::flight().record(obs::Component::kBaseFs, "install_blocks", "legacy",
                       clock_ ? clock_->now() : 0, blocks.size());
  // Make the recovered state durable before any new operation is admitted.
  return commit_txn(/*force_checkpoint=*/true);
}

void BaseFs::note_meta_blocks_batch_(const std::vector<InstallBlock>& blocks) {
  std::lock_guard<std::mutex> lk(meta_blocks_mu_);
  for (const auto& ib : blocks) {
    if (ib.cls == BlockClass::kFileData || !geo_.is_data_block(ib.block)) {
      continue;
    }
    meta_blocks_[ib.block] = ib.cls;
    // Same rule as note_meta_block: the fresh journaled copy must not be
    // suppressed by a stale pending revoke.
    pending_revokes_.erase(ib.block);
  }
}

Status BaseFs::invalidate_for_install_(const std::vector<InstallBlock>& blocks) {
  bool block_bitmap = false;
  bool inode_bitmap = false;
  bool inode_table = false;
  bool dir_meta = false;
  for (const auto& ib : blocks) {
    const BlockNo b = ib.block;
    if (b >= geo_.block_bitmap_start &&
        b < geo_.block_bitmap_start + geo_.block_bitmap_blocks) {
      block_bitmap = true;
    } else if (b >= geo_.inode_bitmap_start &&
               b < geo_.inode_bitmap_start + geo_.inode_bitmap_blocks) {
      inode_bitmap = true;
    } else if (b >= geo_.inode_table_start &&
               b < geo_.inode_table_start + geo_.inode_table_blocks) {
      inode_table = true;
    } else if (geo_.is_data_block(b) && ib.cls == BlockClass::kDirMeta) {
      dir_meta = true;
    }
  }
  if (inode_table) inode_cache_.drop_all();
  if (inode_table || dir_meta) dentry_cache_.drop_all();
  if (block_bitmap) RAEFS_TRY_VOID(reload_free_blocks_());
  if (inode_bitmap) RAEFS_TRY_VOID(reload_free_inodes_());
  return Status::Ok();
}

}  // namespace raefs
