#include "basefs/base_fs.h"

#include <cstring>

#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace raefs {

namespace {
std::vector<uint8_t> zero_block() {
  return std::vector<uint8_t>(kBlockSize, 0);
}
}  // namespace

// ---------------------------------------------------------------------------
// mkfs
// ---------------------------------------------------------------------------

Status BaseFs::mkfs(BlockDevice* dev, const MkfsOptions& opts) {
  if (dev->block_count() < opts.total_blocks) return Errno::kInval;
  RAEFS_TRY(Geometry geo, compute_geometry(opts.total_blocks,
                                           opts.inode_count,
                                           opts.journal_blocks));

  // Zero all metadata regions.
  auto zeros = zero_block();
  for (BlockNo b = 1; b < geo.data_start; ++b) {
    RAEFS_TRY_VOID(dev->write_block(b, zeros));
  }

  // Block bitmap: everything below data_start is owned by metadata.
  {
    std::vector<uint8_t> bitmap(geo.block_bitmap_blocks * kBlockSize, 0);
    BitmapView view(bitmap, geo.total_blocks);
    for (BlockNo b = 0; b < geo.data_start; ++b) view.set(b);
    for (uint64_t i = 0; i < geo.block_bitmap_blocks; ++i) {
      RAEFS_TRY_VOID(dev->write_block(
          geo.block_bitmap_start + i,
          std::span<const uint8_t>(bitmap.data() + i * kBlockSize,
                                   kBlockSize)));
    }
  }

  // Inode bitmap: root inode allocated. Bit i corresponds to ino i+1.
  {
    std::vector<uint8_t> bitmap(geo.inode_bitmap_blocks * kBlockSize, 0);
    BitmapView view(bitmap, geo.inode_count);
    view.set(kRootIno - 1);
    for (uint64_t i = 0; i < geo.inode_bitmap_blocks; ++i) {
      RAEFS_TRY_VOID(dev->write_block(
          geo.inode_bitmap_start + i,
          std::span<const uint8_t>(bitmap.data() + i * kBlockSize,
                                   kBlockSize)));
    }
  }

  // Inode table: CRC-sealed free inodes everywhere, root directory in slot 0.
  {
    std::vector<uint8_t> table_block(kBlockSize, 0);
    DiskInode free_inode;  // type kNone, all zero
    for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
      inode_into_table_block(table_block, slot, free_inode);
    }
    for (uint64_t i = 0; i < geo.inode_table_blocks; ++i) {
      RAEFS_TRY_VOID(dev->write_block(geo.inode_table_start + i, table_block));
    }

    DiskInode root;
    root.type = FileType::kDirectory;
    root.mode = 0755;
    root.nlink = 2;
    root.generation = 1;
    RAEFS_TRY_VOID(dev->read_block(geo.inode_block(kRootIno), table_block));
    inode_into_table_block(table_block, geo.inode_slot(kRootIno), root);
    RAEFS_TRY_VOID(dev->write_block(geo.inode_block(kRootIno), table_block));
  }

  RAEFS_TRY_VOID(Journal::format(dev, geo));

  Superblock sb;
  sb.total_blocks = opts.total_blocks;
  sb.inode_count = opts.inode_count;
  sb.journal_blocks = opts.journal_blocks;
  sb.state = FsState::kClean;
  RAEFS_TRY_VOID(dev->write_block(0, sb.encode()));
  return dev->flush();
}

// ---------------------------------------------------------------------------
// mount / unmount
// ---------------------------------------------------------------------------

BaseFs::BaseFs(BlockDevice* dev, const BaseFsOptions& opts, SimClockPtr clock,
               BugRegistry* bugs, WarnSink* warns, const Superblock& sb,
               const Geometry& geo)
    : dev_(dev),
      opts_(opts),
      clock_(std::move(clock)),
      bugs_(bugs),
      warns_(warns),
      sb_(sb),
      geo_(geo),
      block_cache_(dev, opts.block_cache_blocks, opts.cache_shards),
      inode_cache_(opts.cache_shards),
      dentry_cache_(opts.dentry_cache_entries, opts.cache_shards),
      async_(dev, opts.async_workers),
      journal_(dev, geo) {}

Result<std::unique_ptr<BaseFs>> BaseFs::mount(BlockDevice* dev,
                                              const BaseFsOptions& opts,
                                              SimClockPtr clock,
                                              BugRegistry* bugs,
                                              WarnSink* warns) {
  std::vector<uint8_t> sb_block(kBlockSize);
  RAEFS_TRY_VOID(dev->read_block(0, sb_block));
  RAEFS_TRY(Superblock sb, Superblock::decode(sb_block));
  RAEFS_TRY(Geometry geo, sb.geometry());

  uint64_t replays = 0;
  if (sb.state == FsState::kMounted) {
    // Unclean previous mount: crash recovery via journal replay.
    obs::TraceSpan rspan(obs::kSpanJournalReplay, clock.get());
    RAEFS_TRY(ReplayResult rr, Journal::replay(dev, geo));
    replays = rr.applied_txns;
    obs::flight().record(obs::Component::kJournal, "replay", "",
                         clock ? clock->now() : 0, rr.applied_txns,
                         rr.applied_blocks);
  }

  std::unique_ptr<BaseFs> fs(
      new BaseFs(dev, opts, std::move(clock), bugs, warns, sb, geo));
  fs->replays_at_mount_ = replays;
  RAEFS_TRY_VOID(fs->journal_.open());
  RAEFS_TRY_VOID(fs->reload_counters());
  RAEFS_TRY_VOID(fs->write_superblock(FsState::kMounted));
  // Export this instance's stats under the canonical namespace; multiple
  // mounted instances sum.
  BaseFs* raw = fs.get();
  fs->obs_collector_ = obs::metrics().register_collector(
      [raw](obs::MetricsSink& sink) {
        BaseFsStats s = raw->stats();
        sink.counter(obs::kMBaseOps, s.ops);
        sink.counter(obs::kMBaseCommits, s.commits);
        sink.counter(obs::kMBaseCheckpoints, s.checkpoints);
        sink.counter(obs::kMBaseJournalReplays, s.journal_replays_at_mount);
        sink.counter(obs::kMBaseCacheHits, s.block_cache_hits);
        sink.counter(obs::kMBaseCacheMisses, s.block_cache_misses);
        sink.counter(obs::kMBaseCacheCowClones, s.block_cache_cow_clones);
        sink.counter(obs::kMBaseCacheBytesCopied, s.block_cache_bytes_copied);
        sink.counter(obs::kMBaseDentryHits, s.dentry_hits);
        sink.counter(obs::kMBaseDentryMisses, s.dentry_misses);
        sink.counter(obs::kMBaseInodeCacheHits, s.inode_cache_hits);
        sink.counter(obs::kMBaseInodeCacheMisses, s.inode_cache_misses);
        sink.counter(obs::kMBaseExtentWalks, s.extent_walks);
        sink.counter(obs::kMBaseExtentHintHits, s.extent_hint_hits);
        sink.gauge(obs::kMBaseFreeBlocks,
                   static_cast<int64_t>(raw->free_blocks()));
        sink.gauge(obs::kMBaseFreeInodes,
                   static_cast<int64_t>(raw->free_inodes()));
      });
  obs::flight().record(obs::Component::kBaseFs, "mount",
                       replays != 0 ? "unclean (journal replayed)" : "clean",
                       raw->clock_ ? raw->clock_->now() : 0, replays);
  return fs;
}

Status BaseFs::reload_counters() {
  RAEFS_TRY_VOID(reload_free_blocks_());
  return reload_free_inodes_();
}

Status BaseFs::reload_free_blocks_() {
  uint64_t free_b = 0;
  for (uint64_t i = 0; i < geo_.block_bitmap_blocks; ++i) {
    RAEFS_TRY(auto data, block_cache_.read(geo_.block_bitmap_start + i));
    uint64_t bits_here = std::min<uint64_t>(
        kBitsPerBlock, geo_.total_blocks - i * kBitsPerBlock);
    ConstBitmapView view(data, bits_here);
    free_b += bits_here - view.count_set();
  }
  free_blocks_.store(free_b);
  return Status::Ok();
}

Status BaseFs::reload_free_inodes_() {
  uint64_t free_i = 0;
  for (uint64_t i = 0; i < geo_.inode_bitmap_blocks; ++i) {
    RAEFS_TRY(auto data, block_cache_.read(geo_.inode_bitmap_start + i));
    uint64_t bits_here = std::min<uint64_t>(
        kBitsPerBlock, geo_.inode_count - i * kBitsPerBlock);
    ConstBitmapView view(data, bits_here);
    free_i += bits_here - view.count_set();
  }
  free_inodes_.store(free_i);
  return Status::Ok();
}

Status BaseFs::write_superblock(FsState state) {
  sb_.state = state;
  if (state == FsState::kMounted) ++sb_.mount_count;
  RAEFS_TRY_VOID(dev_->write_block(0, sb_.encode()));
  return dev_->flush();
}

Status BaseFs::unmount() {
  if (unmounted_.exchange(true)) return Errno::kInval;
  RAEFS_TRY_VOID(commit_txn(/*force_checkpoint=*/true));
  async_.drain();
  RAEFS_TRY_VOID(write_superblock(FsState::kClean));
  async_.shutdown();
  obs::flight().record(obs::Component::kBaseFs, "unmount", "clean",
                       clock_ ? clock_->now() : 0);
  return Status::Ok();
}

BaseFs::~BaseFs() {
  // Deregister before any member dies; a concurrent snapshot serializes
  // against this under the registry lock.
  obs_collector_.reset();
  // Intentionally no write-back: see header comment (contained reboot
  // discards all in-memory state).
  async_.shutdown();
}

// ---------------------------------------------------------------------------
// bug injection and accounting
// ---------------------------------------------------------------------------

void BaseFs::bug_site(std::string_view site, OpKind op, std::string_view path,
                      Ino ino, FileOff offset, uint64_t len,
                      const std::function<void()>& corrupt) {
  if (bugs_ == nullptr) return;
  BugContext ctx;
  ctx.site = site;
  ctx.op = op;
  ctx.path = path;
  ctx.ino = ino;
  ctx.offset = offset;
  ctx.len = len;
  ctx.op_index = op_counter_.load(std::memory_order_relaxed);
  auto fired = bugs_->check(ctx);
  if (!fired) return;
  switch (fired->consequence) {
    case BugConsequence::kCrash:
      fs_panic(FaultSite{std::string(site), fired->description, fired->id});
    case BugConsequence::kWarn:
      if (warns_ != nullptr) {
        warns_->warn(FaultSite{std::string(site), fired->description,
                               fired->id});
      }
      break;
    case BugConsequence::kCorrupt:
    case BugConsequence::kWrongResult:
      if (corrupt) corrupt();
      break;
  }
}

void BaseFs::charge_op() {
  op_counter_.fetch_add(1, std::memory_order_relaxed);
  if (clock_ && opts_.op_cpu_cost) clock_->advance(opts_.op_cpu_cost);
}

void BaseFs::note_mutation() {
  // Any metadata mutation may change block mappings; retire all cached
  // extent hints by bumping the global epoch (conservative but cheap).
  mutation_epoch_.fetch_add(1, std::memory_order_release);
  Seq seq = current_op_seq_.load(std::memory_order_relaxed);
  Seq prev = max_dirty_seq_.load(std::memory_order_relaxed);
  while (seq > prev &&
         !max_dirty_seq_.compare_exchange_weak(prev, seq,
                                               std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// inode access
// ---------------------------------------------------------------------------

std::shared_mutex& BaseFs::inode_lock(Ino ino) {
  std::lock_guard<std::mutex> lk(inode_locks_mu_);
  auto& slot = inode_locks_[ino];
  if (!slot) slot = std::make_unique<std::shared_mutex>();
  return *slot;
}

Result<DiskInode> BaseFs::get_inode(Ino ino) {
  BASE_BUG_ON(!geo_.ino_valid(ino), "BaseFs::get_inode",
              "inode number out of range");
  if (opts_.use_inode_cache) {
    if (auto cached = inode_cache_.get(ino)) return *cached;
  }
  // Decode + CRC of a 256-byte inode out of its table block: the CPU work
  // the inode cache exists to avoid.
  if (clock_) clock_->advance(1 * kMicro);
  RAEFS_TRY(auto block, block_cache_.read(geo_.inode_block(ino)));
  auto decoded = inode_from_table_block(block, geo_.inode_slot(ino), geo_);
  // A malformed on-disk inode is exactly the crafted-image crash class
  // from the paper (§2.1): the base has no graceful path and oopses.
  BASE_BUG_ON(!decoded.ok(), "BaseFs::get_inode",
              "on-disk inode failed validation (corrupt or crafted image)");
  if (opts_.use_inode_cache) {
    inode_cache_.put(ino, decoded.value(), /*dirty=*/false);
  }
  return decoded.value();
}

void BaseFs::put_inode(Ino ino, const DiskInode& inode) {
  if (opts_.use_inode_cache) {
    // Unchanged-inode elision: a steady-state overwrite (size, mapping and
    // timestamps all identical) must not dirty metadata. Dirtying it would
    // turn a data-only epoch (one barrier flush) into a full journal
    // transaction (payload + commit record + two flushes) on every fsync.
    if (auto cached = inode_cache_.get(ino); cached && *cached == inode) {
      return;
    }
    note_mutation();
    inode_cache_.put(ino, inode, /*dirty=*/true);
    return;
  }
  note_mutation();
  // Write through to the inode-table block immediately.
  Status st = block_cache_.modify(geo_.inode_block(ino),
                                  [&](std::span<uint8_t> block) {
                                    inode_into_table_block(
                                        block, geo_.inode_slot(ino), inode);
                                  });
  BASE_BUG_ON(!st.ok(), "BaseFs::put_inode", "inode write-through failed");
}

Status BaseFs::flush_inode_cache_locked() {
  for (const auto& [ino, inode] : inode_cache_.dirty_snapshot()) {
    RAEFS_TRY_VOID(block_cache_.modify(
        geo_.inode_block(ino), [&, ino = ino, inode = inode](std::span<uint8_t> block) {
          inode_into_table_block(block, geo_.inode_slot(ino), inode);
        }));
    inode_cache_.mark_clean(ino);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// allocators
// ---------------------------------------------------------------------------

Status BaseFs::bitmap_set(BlockNo bitmap_start, uint64_t index, bool value,
                          const char* what) {
  BlockNo block = bitmap_start + index / kBitsPerBlock;
  uint64_t bit = index % kBitsPerBlock;
  return block_cache_.modify(block, [&](std::span<uint8_t> data) {
    BitmapView view(data, kBitsPerBlock);
    BASE_BUG_ON(view.test(bit) == value, "BaseFs::bitmap_set", what);
    if (value) {
      view.set(bit);
    } else {
      view.clear(bit);
    }
  });
}

Result<bool> BaseFs::bitmap_test(BlockNo bitmap_start, uint64_t index) {
  BlockNo block = bitmap_start + index / kBitsPerBlock;
  uint64_t bit = index % kBitsPerBlock;
  RAEFS_TRY(auto data, block_cache_.read(block));
  ConstBitmapView view(data, kBitsPerBlock);
  return view.test(bit);
}

Result<Ino> BaseFs::alloc_inode(FileType type, uint16_t mode) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (free_inodes_.load() == 0) return Errno::kNoSpace;

  uint64_t hint = alloc_ino_hint_.load();
  for (uint64_t probe = 0; probe < geo_.inode_count; ) {
    uint64_t index = (hint + probe) % geo_.inode_count;
    BlockNo bm_block = geo_.inode_bitmap_start + index / kBitsPerBlock;
    RAEFS_TRY(auto data, block_cache_.read(bm_block));
    uint64_t bits_here = std::min<uint64_t>(
        kBitsPerBlock, geo_.inode_count - (index / kBitsPerBlock) * kBitsPerBlock);
    ConstBitmapView view(data, bits_here);
    auto clear = view.find_clear(index % kBitsPerBlock);
    if (!clear) {
      // Advance to the next bitmap block.
      probe += bits_here - (index % kBitsPerBlock);
      continue;
    }
    uint64_t index_found = (index / kBitsPerBlock) * kBitsPerBlock + *clear;
    if (index_found >= geo_.inode_count) {
      probe += bits_here - (index % kBitsPerBlock);
      continue;
    }
    Ino ino = index_found + 1;

    // Preserve the generation across reuse. The freed inode may still sit
    // unflushed in the inode cache, so read through it before falling back
    // to the table block.
    DiskInode old_inode;
    if (auto cached = inode_cache_.get(ino)) {
      old_inode = *cached;
    } else {
      RAEFS_TRY(auto table, block_cache_.read(geo_.inode_block(ino)));
      auto old = DiskInode::decode_raw(std::span<const uint8_t>(table).subspan(
          geo_.inode_slot(ino) * kInodeSize, kInodeSize));
      BASE_BUG_ON(!old.ok(), "BaseFs::alloc_inode", "free inode slot corrupt");
      old_inode = old.value();
    }
    BASE_BUG_ON(old_inode.in_use(), "BaseFs::alloc_inode",
                "bitmap/table disagree: free bit but used inode");

    RAEFS_TRY_VOID(bitmap_set(geo_.inode_bitmap_start, index_found, true,
                              "inode double-allocation"));
    DiskInode fresh;
    fresh.type = type;
    fresh.mode = mode;
    fresh.nlink = type == FileType::kDirectory ? 2 : 1;
    fresh.generation = old_inode.generation + 1;
    Nanos now = clock_ ? clock_->now() : 0;
    fresh.atime = fresh.mtime = fresh.ctime = now;
    put_inode(ino, fresh);

    free_inodes_.fetch_sub(1);
    alloc_ino_hint_.store(index_found + 1);
    return ino;
  }
  return Errno::kNoSpace;
}

Status BaseFs::free_inode(Ino ino) {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  RAEFS_TRY(DiskInode inode, get_inode(ino));
  DiskInode freed;  // all zero except generation
  freed.generation = inode.generation;
  put_inode(ino, freed);
  RAEFS_TRY_VOID(bitmap_set(geo_.inode_bitmap_start, ino - 1, false,
                            "inode double-free"));
  free_inodes_.fetch_add(1);
  return Status::Ok();
}

Result<BlockNo> BaseFs::alloc_block() {
  std::lock_guard<std::mutex> lk(alloc_mu_);
  if (free_blocks_.load() == 0) return Errno::kNoSpace;

  uint64_t data_span = geo_.total_blocks - geo_.data_start;
  uint64_t hint = alloc_block_hint_.load();
  for (uint64_t probe = 0; probe < data_span;) {
    uint64_t rel = (hint + probe) % data_span;
    uint64_t index = geo_.data_start + rel;
    BlockNo bm_block = geo_.block_bitmap_start + index / kBitsPerBlock;
    RAEFS_TRY(auto data, block_cache_.read(bm_block));
    uint64_t block_base = (index / kBitsPerBlock) * kBitsPerBlock;
    uint64_t bits_here =
        std::min<uint64_t>(kBitsPerBlock, geo_.total_blocks - block_base);
    ConstBitmapView view(data, bits_here);
    auto clear = view.find_clear(index % kBitsPerBlock);
    if (!clear || block_base + *clear >= geo_.total_blocks) {
      probe += bits_here - (index % kBitsPerBlock);
      continue;
    }
    uint64_t index_found = block_base + *clear;
    RAEFS_TRY_VOID(bitmap_set(geo_.block_bitmap_start, index_found, true,
                              "block double-allocation"));
    free_blocks_.fetch_sub(1);
    alloc_block_hint_.store(index_found - geo_.data_start + 1);
    return static_cast<BlockNo>(index_found);
  }
  return Errno::kNoSpace;
}

Status BaseFs::free_block(BlockNo block) {
  BASE_BUG_ON(!geo_.is_data_block(block), "BaseFs::free_block",
              "freeing a metadata block");
  std::lock_guard<std::mutex> lk(alloc_mu_);
  RAEFS_TRY_VOID(
      bitmap_set(geo_.block_bitmap_start, block, false, "block double-free"));
  free_blocks_.fetch_add(1);
  block_cache_.drop(block);
  {
    std::lock_guard<std::mutex> mlk(meta_blocks_mu_);
    if (meta_blocks_.erase(block) > 0) {
      // The journal may hold committed copies of this block; revoke them
      // so a crash replay cannot resurrect stale metadata over the block
      // once it is reallocated as file data.
      pending_revokes_.insert(block);
    }
  }
  return Status::Ok();
}

bool BaseFs::is_meta_block(BlockNo b) const {
  if (b < geo_.data_start) return true;
  std::lock_guard<std::mutex> lk(meta_blocks_mu_);
  return meta_blocks_.count(b) > 0;
}

void BaseFs::note_meta_block(BlockNo b, BlockClass cls) {
  if (cls == BlockClass::kFileData) return;
  std::lock_guard<std::mutex> lk(meta_blocks_mu_);
  meta_blocks_[b] = cls;
  // Reallocated as metadata before the revoke ever committed: the fresh
  // copy will be journaled, which must not be suppressed.
  pending_revokes_.erase(b);
}

std::vector<BlockNo> BaseFs::take_pending_revokes_() {
  std::lock_guard<std::mutex> lk(meta_blocks_mu_);
  std::vector<BlockNo> out(pending_revokes_.begin(), pending_revokes_.end());
  pending_revokes_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

void BaseFs::return_pending_revokes_(const std::vector<BlockNo>& revokes) {
  if (revokes.empty()) return;
  std::lock_guard<std::mutex> lk(meta_blocks_mu_);
  for (BlockNo b : revokes) {
    if (meta_blocks_.count(b) > 0) continue;
    pending_revokes_.insert(b);
  }
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

BaseFsStats BaseFs::stats() const {
  BaseFsStats s;
  s.ops = op_counter_.load();
  s.commits = commits_.load();
  s.checkpoints = checkpoints_.load();
  s.journal_replays_at_mount = replays_at_mount_;
  s.block_cache_hits = block_cache_.hits();
  s.block_cache_misses = block_cache_.misses();
  s.block_cache_cow_clones = block_cache_.cow_clones();
  s.block_cache_bytes_copied = block_cache_.bytes_copied();
  s.extent_walks = extent_walks_.load();
  s.extent_hint_hits = extent_hint_hits_.load();
  s.dentry_hits = dentry_cache_.hits();
  s.dentry_misses = dentry_cache_.misses();
  s.inode_cache_hits = inode_cache_.hits();
  s.inode_cache_misses = inode_cache_.misses();
  return s;
}

CounterSet BaseFsStats::to_counters() const {
  CounterSet c;
  c.add("ops", ops);
  c.add("commits", commits);
  c.add("checkpoints", checkpoints);
  c.add("block_cache_hits", block_cache_hits);
  c.add("block_cache_misses", block_cache_misses);
  c.add("cow_clones", block_cache_cow_clones);
  c.add("bytes_copied", block_cache_bytes_copied);
  c.add("dentry_hits", dentry_hits);
  c.add("dentry_misses", dentry_misses);
  c.add("inode_cache_hits", inode_cache_hits);
  c.add("inode_cache_misses", inode_cache_misses);
  c.add("extent_walks", extent_walks);
  c.add("extent_hint_hits", extent_hint_hits);
  return c;
}

}  // namespace raefs
