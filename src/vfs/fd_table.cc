#include "vfs/fd_table.h"

namespace raefs {

Fd FdTable::insert(Ino ino, uint64_t gen, uint32_t flags) {
  std::lock_guard<std::mutex> lk(mu_);
  Fd fd = next_fd_++;
  OpenFile of;
  of.fd = fd;
  of.ino = ino;
  of.gen = gen;
  of.flags = flags;
  files_.emplace(fd, of);
  return fd;
}

Result<OpenFile> FdTable::get(Fd fd) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(fd);
  if (it == files_.end()) return Errno::kBadFd;
  return it->second;
}

Status FdTable::set_offset(Fd fd, FileOff offset) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(fd);
  if (it == files_.end()) return Errno::kBadFd;
  it->second.offset = offset;
  return Status::Ok();
}

Status FdTable::close(Fd fd) {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.erase(fd) > 0 ? Status::Ok() : Status(Errno::kBadFd);
}

size_t FdTable::open_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.size();
}

std::vector<OpenFile> FdTable::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<OpenFile> out;
  out.reserve(files_.size());
  for (const auto& [fd, of] : files_) out.push_back(of);
  return out;
}

}  // namespace raefs
