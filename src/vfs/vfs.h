// POSIX-style VFS front end, generic over the filesystem stack beneath it
// (bare BaseFs, RaeSupervisor, CrashRestartSupervisor, NvpSupervisor --
// anything exposing the shared operation surface).
//
// This is the application's view: open/close/pread/pwrite/sequential
// read/write with offsets, on top of path-based namespace calls. With a
// RaeSupervisor underneath, descriptors remain valid across recoveries --
// the paper's requirement that "file descriptor numbers must be identical
// to the applications for completed operations".
//
// Every entry point is an operation boundary: an obs::OpScope mints the
// request-scoped op id that all trace spans beneath (base, journal, block
// device -- and the recovery pipeline, if this operation trips a bug)
// carry for causal attribution. See obs/trace.h.
#pragma once

#include <string_view>
#include <vector>

#include "common/clock.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "vfs/fd_table.h"

namespace raefs {

inline constexpr int kMaxSymlinkHops = 8;

/// Combine a symlink's location with its target: absolute targets replace
/// the path, relative ones resolve against the link's directory.
inline std::string resolve_link_target(std::string_view link_path,
                                       std::string_view target) {
  if (!target.empty() && target.front() == '/') return std::string(target);
  auto cut = link_path.find_last_of('/');
  std::string dir = cut == std::string_view::npos
                        ? std::string("/")
                        : std::string(link_path.substr(0, cut));
  if (dir.empty()) dir = "/";
  return dir == "/" ? "/" + std::string(target)
                    : dir + "/" + std::string(target);
}

template <typename FsT>
class Vfs {
 public:
  /// `clock` (optional) timestamps the vfs.* trace spans; pass the same
  /// simulated clock the stack beneath runs on.
  explicit Vfs(FsT* fs, SimClockPtr clock = nullptr)
      : fs_(fs), clock_(std::move(clock)) {}

  /// Open (optionally creating/truncating) a regular file. Trailing
  /// symlinks are resolved (lexically, up to kMaxSymlinkHops) unless
  /// kNoFollow is set; loops return kLoop.
  Result<Fd> open(std::string_view path, uint32_t flags, uint16_t mode = 0644) {
    obs::OpScope op;
    obs::TraceSpan span(obs::kSpanVfsOpen, clock_.get());
    std::string current(path);
    Ino ino = kInvalidIno;
    for (int hop = 0;; ++hop) {
      if (hop > kMaxSymlinkHops) return Errno::kLoop;
      auto looked = fs_->lookup(current);
      if (looked.ok()) {
        if (flags & kExcl) return Errno::kExist;
        ino = looked.value();
      } else if (looked.error() == Errno::kNoEnt && (flags & kCreate)) {
        auto created = fs_->create(current, mode);
        if (!created.ok()) return created.error();
        ino = created.value();
      } else {
        return looked.error();
      }
      auto peek = fs_->stat_ino(ino);
      if (!peek.ok()) return peek.error();
      if (peek.value().type != FileType::kSymlink) break;
      if (flags & kNoFollow) return Errno::kLoop;  // POSIX O_NOFOLLOW
      auto target = fs_->readlink(current);
      if (!target.ok()) return target.error();
      current = resolve_link_target(current, target.value());
    }

    auto st = fs_->stat_ino(ino);
    if (!st.ok()) return st.error();
    if (st.value().type == FileType::kDirectory) return Errno::kIsDir;
    if (st.value().type != FileType::kRegular) return Errno::kInval;

    if ((flags & kTrunc) && (flags & kWrOnly)) {
      auto truncated = fs_->truncate(ino, st.value().generation, 0);
      if (!truncated.ok()) return truncated.error();
    }
    return fds_.insert(ino, st.value().generation, flags);
  }

  Status close(Fd fd) {
    obs::OpScope op;
    return fds_.close(fd);
  }

  /// Sequential read at the descriptor's offset.
  Result<std::vector<uint8_t>> read(Fd fd, uint64_t len) {
    obs::OpScope op;
    obs::TraceSpan span(obs::kSpanVfsRead, clock_.get());
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    if (!(of.flags & kRdOnly)) return Errno::kBadFd;
    RAEFS_TRY(auto data, fs_->read(of.ino, of.gen, of.offset, len));
    RAEFS_TRY_VOID(fds_.set_offset(fd, of.offset + data.size()));
    return data;
  }

  /// Sequential write at the descriptor's offset (or the end for kAppend).
  Result<uint64_t> write(Fd fd, std::span<const uint8_t> data) {
    obs::OpScope op;
    obs::TraceSpan span(obs::kSpanVfsWrite, clock_.get());
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    if (!(of.flags & kWrOnly)) return Errno::kBadFd;
    FileOff off = of.offset;
    if (of.flags & kAppend) {
      RAEFS_TRY(auto st, fs_->stat_ino(of.ino));
      off = st.size;
    }
    RAEFS_TRY(uint64_t n, fs_->write(of.ino, of.gen, off, data));
    RAEFS_TRY_VOID(fds_.set_offset(fd, off + n));
    return n;
  }

  Result<std::vector<uint8_t>> pread(Fd fd, FileOff off, uint64_t len) {
    obs::OpScope op;
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    if (!(of.flags & kRdOnly)) return Errno::kBadFd;
    return fs_->read(of.ino, of.gen, off, len);
  }

  Result<uint64_t> pwrite(Fd fd, FileOff off, std::span<const uint8_t> data) {
    obs::OpScope op;
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    if (!(of.flags & kWrOnly)) return Errno::kBadFd;
    return fs_->write(of.ino, of.gen, off, data);
  }

  Result<FileOff> seek(Fd fd, FileOff offset) {
    obs::OpScope op;
    RAEFS_TRY_VOID(fds_.set_offset(fd, offset));
    return offset;
  }

  Status ftruncate(Fd fd, uint64_t size) {
    obs::OpScope op;
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    if (!(of.flags & kWrOnly)) return Errno::kBadFd;
    return fs_->truncate(of.ino, of.gen, size);
  }

  // Joins the epoch open at call time and waits for that epoch's
  // durability only (group commit): concurrent fsyncs collapse into one
  // journal transaction, and ops issued after this call owe it nothing.
  Status fsync(Fd fd) {
    obs::OpScope op;
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    return fs_->fsync(of.ino);
  }

  Result<StatResult> fstat(Fd fd) {
    obs::OpScope op;
    RAEFS_TRY(OpenFile of, fds_.get(fd));
    auto st = fs_->stat_ino(of.ino);
    // A freed or reused inode means the descriptor is stale, not that the
    // file "does not exist" -- the app never passed a path here.
    if (!st.ok()) {
      return st.error() == Errno::kNoEnt ? Errno::kBadFd : st.error();
    }
    if (st.value().generation != of.gen) return Errno::kBadFd;
    return st.value();
  }

  // Namespace passthroughs.
  Status mkdir(std::string_view path, uint16_t mode = 0755) {
    obs::OpScope op;
    RAEFS_TRY_VOID(fs_->mkdir(path, mode));
    return Status::Ok();
  }
  Status unlink(std::string_view path) {
    obs::OpScope op;
    return fs_->unlink(path);
  }
  Status rmdir(std::string_view path) {
    obs::OpScope op;
    return fs_->rmdir(path);
  }
  Status rename(std::string_view src, std::string_view dst) {
    obs::OpScope op;
    return fs_->rename(src, dst);
  }
  Result<std::vector<DirEntry>> readdir(std::string_view path) {
    obs::OpScope op;
    return fs_->readdir(path);
  }
  Result<StatResult> stat(std::string_view path) {
    obs::OpScope op;
    return fs_->stat(path);
  }
  Status sync() {
    obs::OpScope op;
    return fs_->sync();
  }

  FdTable& fd_table() { return fds_; }
  FsT& fs() { return *fs_; }

 private:
  FsT* fs_;
  SimClockPtr clock_;
  FdTable fds_;
};

}  // namespace raefs
