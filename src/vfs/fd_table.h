// File-descriptor table.
//
// Part of the *essential state* (paper §2.2, Figure 3): applications hold
// fds across a recovery, so the table is owned by the layer above the
// base filesystem (here: the VFS, used alongside a supervisor) and
// survives the contained reboot. Descriptors carry the inode generation
// captured at open() so post-recovery (or post-unlink) staleness is
// detected instead of silently touching a reused inode.
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace raefs {

/// open() flags (combinable).
enum OpenFlags : uint32_t {
  kRdOnly = 1u << 0,
  kWrOnly = 1u << 1,
  kRdWr = kRdOnly | kWrOnly,
  kCreate = 1u << 2,
  kTrunc = 1u << 3,
  kAppend = 1u << 4,
  kExcl = 1u << 5,
  kNoFollow = 1u << 6,  // do not resolve a trailing symlink (O_NOFOLLOW)
};

struct OpenFile {
  Fd fd = kInvalidFd;
  Ino ino = kInvalidIno;
  uint64_t gen = 0;
  FileOff offset = 0;
  uint32_t flags = 0;
};

class FdTable {
 public:
  Fd insert(Ino ino, uint64_t gen, uint32_t flags);

  /// Copy of the entry (fds are small; copies avoid lock-escape issues).
  Result<OpenFile> get(Fd fd) const;

  /// Overwrite the entry's offset.
  Status set_offset(Fd fd, FileOff offset);

  Status close(Fd fd);

  size_t open_count() const;
  std::vector<OpenFile> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Fd, OpenFile> files_;
  Fd next_fd_ = 3;  // 0/1/2 reserved, as tradition demands
};

}  // namespace raefs
