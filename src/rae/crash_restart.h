// CrashRestartSupervisor -- the status-quo baseline the paper argues
// against (§1: "the best approach is simply to crash and recover from
// known on-disk state, and suffer the resulting loss of availability").
//
// On any trapped panic it simulates a machine crash: the device's volatile
// write cache is lost, the whole "OS" reboots (a large simulated cost),
// the journal is replayed, and the filesystem remounts. The in-flight
// operation fails with EIO, and every operation the application already
// saw succeed whose effects had not been flushed is silently lost --
// both are counted, for contrast with RAE's zero app-visible failures.
#pragma once

#include <memory>
#include <mutex>

#include "basefs/base_fs.h"
#include "blockdev/mem_device.h"
#include "common/stats.h"

namespace raefs {

struct CrashRestartOptions {
  BaseFsOptions base;
  /// Simulated cost of a full machine reboot + remount (OS boot, fsck,
  /// service restart). Orders of magnitude above a contained reboot.
  Nanos machine_restart_cost = 5 * kSecond;
};

struct CrashRestartStats {
  uint64_t crashes = 0;
  uint64_t app_visible_failures = 0;  // in-flight ops failed with EIO
  uint64_t lost_acked_ops = 0;        // acked ops whose effects vanished
  Nanos total_downtime = 0;
  LatencyHistogram restart_time;
};

class CrashRestartSupervisor {
 public:
  static Result<std::unique_ptr<CrashRestartSupervisor>> start(
      MemBlockDevice* dev, const CrashRestartOptions& opts, SimClockPtr clock,
      BugRegistry* bugs);

  // Application-facing API (same shape as RaeSupervisor).
  Result<Ino> lookup(std::string_view path);
  Result<Ino> create(std::string_view path, uint16_t mode);
  Result<Ino> mkdir(std::string_view path, uint16_t mode);
  Status unlink(std::string_view path);
  Status rmdir(std::string_view path);
  Status rename(std::string_view src, std::string_view dst);
  Status link(std::string_view existing, std::string_view newpath);
  Result<Ino> symlink(std::string_view linkpath, std::string_view target);
  Result<std::string> readlink(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path);
  Result<StatResult> stat(std::string_view path);
  Result<StatResult> stat_ino(Ino ino);
  Result<std::vector<uint8_t>> read(Ino ino, uint64_t gen, FileOff off,
                                    uint64_t len);
  Result<uint64_t> write(Ino ino, uint64_t gen, FileOff off,
                         std::span<const uint8_t> data);
  Status truncate(Ino ino, uint64_t gen, uint64_t new_size);
  Status fsync(Ino ino);
  Status sync();

  Status shutdown();

  const CrashRestartStats& stats() const { return stats_; }
  BaseFsStats base_stats() const { return base_ ? base_->stats() : BaseFsStats{}; }

 private:
  CrashRestartSupervisor(MemBlockDevice* dev, const CrashRestartOptions& opts,
                         SimClockPtr clock, BugRegistry* bugs);
  Status mount_base();
  void machine_crash();

  template <typename T>
  Result<T> run(const std::function<Result<T>(BaseFs&)>& fn, bool mutates);

  MemBlockDevice* dev_;
  CrashRestartOptions opts_;
  SimClockPtr clock_;
  BugRegistry* bugs_;
  WarnSink warns_;  // WARNs are logged and ignored: stock kernel behaviour

  std::mutex mu_;
  std::unique_ptr<BaseFs> base_;
  CrashRestartStats stats_;
  Seq issued_ = 0;   // acked mutating ops since mount
  Seq durable_ = 0;  // of those, how many are on disk
  bool shutdown_ = false;
};

}  // namespace raefs
