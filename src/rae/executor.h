// Shadow executors: how the supervisor runs the shadow filesystem.
//
// The paper launches the shadow "as a separate userspace process to ensure
// the strong isolation of faults and a clean interface" (§3.2).
// ForkShadowExecutor does exactly that on POSIX: fork() a child whose
// copy-on-write address space holds a frozen snapshot of the device, run
// the replay there, and ship the ShadowOutcome back over a pipe using the
// wire format. InProcessShadowExecutor runs the same replay behind the
// same narrow interface without the process boundary (deterministic, and
// portable to environments without fork()).
#pragma once

#include <memory>

#include "blockdev/block_device.h"
#include "oplog/op.h"
#include "shadowfs/shadow_replay.h"

namespace raefs {

class ShadowExecutor {
 public:
  virtual ~ShadowExecutor() = default;

  /// Run the recovery replay over `dev` (the shadow itself accesses it
  /// read-only). `clock` is advanced by the shadow's simulated time.
  virtual ShadowOutcome execute(BlockDevice* dev,
                                const std::vector<OpRecord>& log,
                                const ShadowConfig& config,
                                SimClockPtr clock) = 0;

  virtual const char* name() const = 0;
};

class InProcessShadowExecutor final : public ShadowExecutor {
 public:
  ShadowOutcome execute(BlockDevice* dev, const std::vector<OpRecord>& log,
                        const ShadowConfig& config,
                        SimClockPtr clock) override;
  const char* name() const override { return "in-process"; }
};

class ForkShadowExecutor final : public ShadowExecutor {
 public:
  ShadowOutcome execute(BlockDevice* dev, const std::vector<OpRecord>& log,
                        const ShadowConfig& config,
                        SimClockPtr clock) override;
  const char* name() const override { return "fork"; }
};

std::unique_ptr<ShadowExecutor> make_executor(bool use_fork);

}  // namespace raefs
