#include "rae/executor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rae/wire.h"
#include "shadowfs/shadow_parallel.h"

namespace raefs {

ShadowOutcome InProcessShadowExecutor::execute(
    BlockDevice* dev, const std::vector<OpRecord>& log,
    const ShadowConfig& config, SimClockPtr clock) {
  // Round-trip the op sequence through the wire format even in-process:
  // the interface the shadow sees is identical in both executors.
  auto encoded = wire::encode_op_records(log);
  auto decoded = wire::decode_op_records(encoded);
  ShadowOutcome outcome;
  if (!decoded.ok()) {
    outcome.ok = false;
    outcome.failure = "op-record wire corruption";
    return outcome;
  }
  return shadow_execute_parallel(dev, decoded.value(), config,
                                 std::move(clock));
}

namespace {

bool write_all(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, uint8_t* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::read(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

ShadowOutcome fail(const char* why) {
  ShadowOutcome outcome;
  outcome.ok = false;
  outcome.failure = why;
  return outcome;
}

}  // namespace

ShadowOutcome ForkShadowExecutor::execute(BlockDevice* dev,
                                          const std::vector<OpRecord>& log,
                                          const ShadowConfig& config,
                                          SimClockPtr clock) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) return fail("pipe() failed");

  auto encoded = wire::encode_op_records(log);

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    return fail("fork() failed");
  }

  if (pid == 0) {
    // Child: its copy-on-write address space is the isolation boundary.
    // The device snapshot is whatever the parent's memory held at fork();
    // the shadow reads it through a read-only view and writes nothing.
    // Simulated-time note: the device object charges ITS clock, which in
    // the child is a COW copy -- those charges stay in the child. The
    // fresh child clock below captures the shadow's own costs, which is
    // what sim_time_used reports back; fork-mode recovery time therefore
    // undercounts pure device-read latency slightly (a few percent).
    ::close(pipefd[0]);
    auto decoded = wire::decode_op_records(encoded);
    ShadowOutcome outcome;
    if (!decoded.ok()) {
      outcome.ok = false;
      outcome.failure = "op-record wire corruption (child)";
    } else {
      auto child_clock = make_clock();  // fresh clock; delta reported back
      outcome = shadow_execute_parallel(dev, decoded.value(), config,
                                        child_clock);
    }
    auto bytes = wire::encode_outcome(outcome);
    uint64_t len = bytes.size();
    bool sent =
        write_all(pipefd[1], reinterpret_cast<const uint8_t*>(&len),
                  sizeof(len)) &&
        write_all(pipefd[1], bytes.data(), bytes.size());
    ::close(pipefd[1]);
    ::_exit(sent ? 0 : 1);
  }

  // Parent.
  ::close(pipefd[1]);
  uint64_t len = 0;
  ShadowOutcome outcome;
  if (!read_all(pipefd[0], reinterpret_cast<uint8_t*>(&len), sizeof(len)) ||
      len > (1ull << 31)) {
    outcome = fail("shadow child produced no/oversized output");
  } else {
    std::vector<uint8_t> bytes(len);
    if (!read_all(pipefd[0], bytes.data(), bytes.size())) {
      outcome = fail("shadow child output truncated");
    } else {
      auto decoded = wire::decode_outcome(bytes);
      outcome = decoded.ok() ? std::move(decoded).value()
                             : fail("outcome wire corruption");
    }
  }
  ::close(pipefd[0]);

  int status = 0;
  (void)::waitpid(pid, &status, 0);
  if (outcome.ok && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
    outcome = fail("shadow child crashed");
  }
  if (clock && outcome.sim_time_used > 0) clock->advance(outcome.sim_time_used);
  return outcome;
}

std::unique_ptr<ShadowExecutor> make_executor(bool use_fork) {
  if (use_fork) return std::make_unique<ForkShadowExecutor>();
  return std::make_unique<InProcessShadowExecutor>();
}

}  // namespace raefs
