#include "rae/wire.h"

#include "common/serial.h"

namespace raefs {
namespace wire {

namespace {
constexpr uint32_t kOpMagic = 0x52414F50;    // "RAOP"
constexpr uint32_t kOutMagic = 0x52414F55;   // "RAOU"

void encode_outcome_fields(Encoder& enc, const OpOutcome& out) {
  enc.put_u32(static_cast<uint32_t>(out.err));
  enc.put_u64(out.assigned_ino);
  enc.put_u64(out.result_len);
  enc.put_u32(static_cast<uint32_t>(out.payload.size()));
  enc.put_bytes(out.payload);
}

OpOutcome decode_outcome_fields(Decoder& dec) {
  OpOutcome out;
  out.err = static_cast<Errno>(dec.get_u32());
  out.assigned_ino = dec.get_u64();
  out.result_len = dec.get_u64();
  uint32_t payload_len = dec.get_u32();
  out.payload = dec.get_bytes(payload_len);
  return out;
}
}  // namespace

std::vector<uint8_t> encode_op_records(const std::vector<OpRecord>& records) {
  std::vector<uint8_t> bytes;
  Encoder enc(&bytes);
  enc.put_u32(kOpMagic);
  enc.put_u32(static_cast<uint32_t>(records.size()));
  for (const auto& rec : records) {
    enc.put_u64(rec.seq);
    enc.put_u8(static_cast<uint8_t>(rec.req.kind));
    enc.put_string(rec.req.path);
    enc.put_string(rec.req.path2);
    enc.put_u64(rec.req.ino);
    enc.put_u64(rec.req.gen);
    enc.put_u64(rec.req.offset);
    enc.put_u64(rec.req.len);
    enc.put_u32(static_cast<uint32_t>(rec.req.data.size()));
    enc.put_bytes(rec.req.data);
    enc.put_u16(rec.req.mode);
    enc.put_u64(rec.req.stamp);
    enc.put_u8(rec.completed ? 1 : 0);
    encode_outcome_fields(enc, rec.out);
  }
  return bytes;
}

Result<std::vector<OpRecord>> decode_op_records(
    std::span<const uint8_t> bytes) {
  Decoder dec(bytes);
  if (dec.get_u32() != kOpMagic) return Errno::kCorrupt;
  uint32_t n = dec.get_u32();
  std::vector<OpRecord> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n && dec.ok(); ++i) {
    OpRecord rec;
    rec.seq = dec.get_u64();
    rec.req.kind = static_cast<OpKind>(dec.get_u8());
    rec.req.path = dec.get_string();
    rec.req.path2 = dec.get_string();
    rec.req.ino = dec.get_u64();
    rec.req.gen = dec.get_u64();
    rec.req.offset = dec.get_u64();
    rec.req.len = dec.get_u64();
    uint32_t data_len = dec.get_u32();
    rec.req.data = dec.get_bytes(data_len);
    rec.req.mode = dec.get_u16();
    rec.req.stamp = dec.get_u64();
    rec.completed = dec.get_u8() != 0;
    rec.out = decode_outcome_fields(dec);
    records.push_back(std::move(rec));
  }
  if (!dec.ok() || dec.remaining() != 0) return Errno::kCorrupt;
  return records;
}

std::vector<uint8_t> encode_outcome(const ShadowOutcome& outcome) {
  std::vector<uint8_t> bytes;
  Encoder enc(&bytes);
  enc.put_u32(kOutMagic);
  enc.put_u8(outcome.ok ? 1 : 0);
  enc.put_string(outcome.failure);

  enc.put_u32(static_cast<uint32_t>(outcome.dirty.size()));
  for (const auto& ib : outcome.dirty) {
    enc.put_u64(ib.block);
    enc.put_u8(static_cast<uint8_t>(ib.cls));
    enc.put_bytes(ib.data);
  }

  enc.put_u32(static_cast<uint32_t>(outcome.discrepancies.size()));
  for (const auto& d : outcome.discrepancies) {
    enc.put_u64(d.seq);
    enc.put_string(d.description);
  }

  enc.put_u32(static_cast<uint32_t>(outcome.inflight_results.size()));
  for (const auto& [seq, out] : outcome.inflight_results) {
    enc.put_u64(seq);
    encode_outcome_fields(enc, out);
  }

  enc.put_u32(static_cast<uint32_t>(outcome.inflight_retry_syncs.size()));
  for (Seq seq : outcome.inflight_retry_syncs) enc.put_u64(seq);

  enc.put_u64(outcome.ops_replayed);
  enc.put_u64(outcome.ops_skipped_errored);
  enc.put_u64(outcome.ops_skipped_sync);
  enc.put_u64(outcome.device_reads);
  enc.put_u64(outcome.checks);
  enc.put_u64(outcome.sim_time_used);
  return bytes;
}

Result<ShadowOutcome> decode_outcome(std::span<const uint8_t> bytes) {
  Decoder dec(bytes);
  if (dec.get_u32() != kOutMagic) return Errno::kCorrupt;
  ShadowOutcome outcome;
  outcome.ok = dec.get_u8() != 0;
  outcome.failure = dec.get_string();

  uint32_t ndirty = dec.get_u32();
  for (uint32_t i = 0; i < ndirty && dec.ok(); ++i) {
    InstallBlock ib;
    ib.block = dec.get_u64();
    ib.cls = static_cast<BlockClass>(dec.get_u8());
    ib.data = dec.get_bytes(kBlockSize);
    outcome.dirty.push_back(std::move(ib));
  }

  uint32_t ndisc = dec.get_u32();
  for (uint32_t i = 0; i < ndisc && dec.ok(); ++i) {
    Discrepancy d;
    d.seq = dec.get_u64();
    d.description = dec.get_string();
    outcome.discrepancies.push_back(std::move(d));
  }

  uint32_t ninflight = dec.get_u32();
  for (uint32_t i = 0; i < ninflight && dec.ok(); ++i) {
    Seq seq = dec.get_u64();
    outcome.inflight_results.emplace_back(seq, decode_outcome_fields(dec));
  }

  uint32_t nretry = dec.get_u32();
  for (uint32_t i = 0; i < nretry && dec.ok(); ++i) {
    outcome.inflight_retry_syncs.push_back(dec.get_u64());
  }

  outcome.ops_replayed = dec.get_u64();
  outcome.ops_skipped_errored = dec.get_u64();
  outcome.ops_skipped_sync = dec.get_u64();
  outcome.device_reads = dec.get_u64();
  outcome.checks = dec.get_u64();
  outcome.sim_time_used = dec.get_u64();
  if (!dec.ok() || dec.remaining() != 0) return Errno::kCorrupt;
  return outcome;
}

}  // namespace wire
}  // namespace raefs
