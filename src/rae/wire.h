// Wire format for the base<->shadow interface.
//
// The paper requires "a lean, well-defined, and thoroughly tested
// interface" between base and shadow (§4.3). This is it: the operation
// sequence travels one way, the ShadowOutcome (dirty blocks + per-op
// results + discrepancy report) travels back. The fork-based executor
// sends these over a pipe between address spaces; tests exercise
// round-trip fidelity directly.
#pragma once

#include <vector>

#include "common/result.h"
#include "oplog/op.h"
#include "shadowfs/shadow_replay.h"

namespace raefs {
namespace wire {

std::vector<uint8_t> encode_op_records(const std::vector<OpRecord>& records);
Result<std::vector<OpRecord>> decode_op_records(
    std::span<const uint8_t> bytes);

std::vector<uint8_t> encode_outcome(const ShadowOutcome& outcome);
Result<ShadowOutcome> decode_outcome(std::span<const uint8_t> bytes);

}  // namespace wire
}  // namespace raefs
