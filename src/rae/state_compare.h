// Essential-state comparison between two filesystem views (library-grade
// twin of the test suite's comparator). Used by the supervisor's deep
// scrub: the shadow reconstructs what the state SHOULD be from the
// recorded operations, and any divergence in names, types, link counts,
// sizes, file contents or symlink targets indicts the base -- including
// silent DATA corruption, which neither validate-on-sync (metadata only),
// fsck (structure only), nor the outcome cross-check (return values only)
// can see. The paper notes data pages are shared because "only
// applications can detect their corruption" (§2.3); re-execution gives
// the shadow that power too.
#pragma once

#include <sstream>
#include <string>

#include "format/dirent.h"

namespace raefs {
namespace state_compare {

struct Options {
  bool compare_inos = true;
  bool compare_nlink = true;
  /// Read and compare full file contents (the expensive, decisive part).
  bool compare_content = true;
  /// Stop after this many reported differences.
  size_t max_diffs = 16;
};

namespace detail {

template <typename A, typename B>
void compare_dir(A& a, B& b, const std::string& path, const Options& opts,
                 size_t* diffs, std::ostringstream& out) {
  if (*diffs >= opts.max_diffs) return;
  auto la = a.readdir(path);
  auto lb = b.readdir(path);
  if (!la.ok() || !lb.ok()) {
    out << path << ": readdir "
        << to_string(la.ok() ? Errno::kOk : la.error()) << " vs "
        << to_string(lb.ok() ? Errno::kOk : lb.error()) << "\n";
    ++*diffs;
    return;
  }
  if (la.value().size() != lb.value().size()) {
    out << path << ": entry count " << la.value().size() << " vs "
        << lb.value().size() << "\n";
    ++*diffs;
    return;
  }
  for (size_t i = 0; i < la.value().size() && *diffs < opts.max_diffs; ++i) {
    const DirEntry& ea = la.value()[i];
    const DirEntry& eb = lb.value()[i];
    std::string child = (path == "/" ? "" : path) + "/" + ea.name;
    if (ea.name != eb.name || ea.type != eb.type) {
      out << child << ": entry mismatch ('" << ea.name << "'/"
          << to_string(ea.type) << " vs '" << eb.name << "'/"
          << to_string(eb.type) << ")\n";
      ++*diffs;
      continue;
    }
    if (opts.compare_inos && ea.ino != eb.ino) {
      out << child << ": ino " << ea.ino << " vs " << eb.ino << "\n";
      ++*diffs;
    }
    auto sa = a.stat(child);
    auto sb = b.stat(child);
    if (!sa.ok() || !sb.ok()) {
      out << child << ": stat errs\n";
      ++*diffs;
      continue;
    }
    if (ea.type != FileType::kDirectory &&
        sa.value().size != sb.value().size) {
      out << child << ": size " << sa.value().size << " vs "
          << sb.value().size << "\n";
      ++*diffs;
    }
    if (opts.compare_nlink && sa.value().nlink != sb.value().nlink) {
      out << child << ": nlink " << sa.value().nlink << " vs "
          << sb.value().nlink << "\n";
      ++*diffs;
    }
    switch (ea.type) {
      case FileType::kDirectory:
        compare_dir(a, b, child, opts, diffs, out);
        break;
      case FileType::kRegular:
        if (opts.compare_content) {
          auto ca = a.read(sa.value().ino, 0, 0, sa.value().size);
          auto cb = b.read(sb.value().ino, 0, 0, sb.value().size);
          if (!ca.ok() || !cb.ok()) {
            out << child << ": content read errs\n";
            ++*diffs;
          } else if (ca.value() != cb.value()) {
            size_t at = 0;
            size_t limit =
                std::min(ca.value().size(), cb.value().size());
            while (at < limit && ca.value()[at] == cb.value()[at]) ++at;
            out << child << ": content differs at byte " << at << "\n";
            ++*diffs;
          }
        }
        break;
      case FileType::kSymlink: {
        auto ta = a.readlink(child);
        auto tb = b.readlink(child);
        if (!ta.ok() || !tb.ok() || ta.value() != tb.value()) {
          out << child << ": symlink target differs\n";
          ++*diffs;
        }
        break;
      }
      default:
        out << child << ": unexpected type\n";
        ++*diffs;
    }
  }
}

}  // namespace detail

/// Empty string = essential states agree; otherwise a bounded diff.
template <typename A, typename B>
std::string diff_essential_state(A& a, B& b, Options opts = {}) {
  std::ostringstream out;
  size_t diffs = 0;
  detail::compare_dir(a, b, "/", opts, &diffs, out);
  return out.str();
}

}  // namespace state_compare
}  // namespace raefs
