#include "rae/crash_restart.h"

#include "obs/flight_recorder.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace raefs {

CrashRestartSupervisor::CrashRestartSupervisor(MemBlockDevice* dev,
                                               const CrashRestartOptions& opts,
                                               SimClockPtr clock,
                                               BugRegistry* bugs)
    : dev_(dev), opts_(opts), clock_(std::move(clock)), bugs_(bugs) {}

Result<std::unique_ptr<CrashRestartSupervisor>> CrashRestartSupervisor::start(
    MemBlockDevice* dev, const CrashRestartOptions& opts, SimClockPtr clock,
    BugRegistry* bugs) {
  std::unique_ptr<CrashRestartSupervisor> sup(
      new CrashRestartSupervisor(dev, opts, std::move(clock), bugs));
  RAEFS_TRY_VOID(sup->mount_base());
  return sup;
}

Status CrashRestartSupervisor::mount_base() {
  RAEFS_TRY(base_, BaseFs::mount(dev_, opts_.base, clock_, bugs_, &warns_));
  base_->set_durable_callback([this](Seq seq) {
    if (seq > durable_) durable_ = seq;
  });
  issued_ = 0;
  durable_ = 0;
  return Status::Ok();
}

void CrashRestartSupervisor::machine_crash() {
  Nanos t0 = clock_ ? clock_->now() : 0;
  ++stats_.crashes;
  obs::flight().record(obs::Component::kRae, "machine_crash", "", t0,
                       stats_.crashes);
  obs::TraceSpan span(obs::kSpanCrashRestart, clock_.get());
  // Acked-but-unflushed updates die with the machine.
  stats_.lost_acked_ops += issued_ > durable_ ? issued_ - durable_ : 0;
  base_.reset();          // kernel memory gone
  dev_->crash();          // volatile device cache gone
  if (clock_) clock_->advance(opts_.machine_restart_cost);
  (void)mount_base();     // journal replay happens inside mount
  if (clock_) {
    Nanos dt = clock_->now() - t0;
    stats_.total_downtime += dt;
    stats_.restart_time.record(dt);
  }
}

template <typename T>
Result<T> CrashRestartSupervisor::run(
    const std::function<Result<T>(BaseFs&)>& fn, bool mutates) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_ || !base_) return Errno::kIo;
  try {
    if (mutates) base_->set_current_op_seq(issued_ + 1);
    Result<T> result = fn(*base_);
    if (mutates && result.ok()) ++issued_;
    return result;
  } catch (const FsPanicError&) {
    // The machine goes down; the application sees EIO for this op.
    ++stats_.app_visible_failures;
    machine_crash();
    return Errno::kIo;
  }
}

Result<Ino> CrashRestartSupervisor::lookup(std::string_view path) {
  return run<Ino>([&](BaseFs& fs) { return fs.lookup(path); }, false);
}
Result<Ino> CrashRestartSupervisor::create(std::string_view path,
                                           uint16_t mode) {
  return run<Ino>([&](BaseFs& fs) { return fs.create(path, mode); }, true);
}
Result<Ino> CrashRestartSupervisor::mkdir(std::string_view path,
                                          uint16_t mode) {
  return run<Ino>([&](BaseFs& fs) { return fs.mkdir(path, mode); }, true);
}
Status CrashRestartSupervisor::unlink(std::string_view path) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.unlink(path));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Status CrashRestartSupervisor::rmdir(std::string_view path) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.rmdir(path));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Status CrashRestartSupervisor::rename(std::string_view src,
                                      std::string_view dst) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.rename(src, dst));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Status CrashRestartSupervisor::link(std::string_view existing,
                                    std::string_view newpath) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.link(existing, newpath));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Result<Ino> CrashRestartSupervisor::symlink(std::string_view linkpath,
                                            std::string_view target) {
  return run<Ino>([&](BaseFs& fs) { return fs.symlink(linkpath, target); },
                  true);
}
Result<std::string> CrashRestartSupervisor::readlink(std::string_view path) {
  return run<std::string>([&](BaseFs& fs) { return fs.readlink(path); },
                          false);
}
Result<std::vector<DirEntry>> CrashRestartSupervisor::readdir(
    std::string_view path) {
  return run<std::vector<DirEntry>>(
      [&](BaseFs& fs) { return fs.readdir(path); }, false);
}
Result<StatResult> CrashRestartSupervisor::stat(std::string_view path) {
  return run<StatResult>([&](BaseFs& fs) { return fs.stat(path); }, false);
}
Result<StatResult> CrashRestartSupervisor::stat_ino(Ino ino) {
  return run<StatResult>([&](BaseFs& fs) { return fs.stat_ino(ino); }, false);
}
Result<std::vector<uint8_t>> CrashRestartSupervisor::read(Ino ino,
                                                          uint64_t gen,
                                                          FileOff off,
                                                          uint64_t len) {
  return run<std::vector<uint8_t>>(
      [&](BaseFs& fs) { return fs.read(ino, gen, off, len); }, false);
}
Result<uint64_t> CrashRestartSupervisor::write(Ino ino, uint64_t gen,
                                               FileOff off,
                                               std::span<const uint8_t> data) {
  return run<uint64_t>(
      [&](BaseFs& fs) { return fs.write(ino, gen, off, data); }, true);
}
Status CrashRestartSupervisor::truncate(Ino ino, uint64_t gen,
                                        uint64_t new_size) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.truncate(ino, gen, new_size));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Status CrashRestartSupervisor::fsync(Ino ino) {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.fsync(ino));
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}
Status CrashRestartSupervisor::sync() {
  auto r = run<Ino>(
      [&](BaseFs& fs) -> Result<Ino> {
        RAEFS_TRY_VOID(fs.sync());
        return Ino{0};
      },
      true);
  return r.ok() ? Status::Ok() : Status(r.error());
}

Status CrashRestartSupervisor::shutdown() {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) return Errno::kInval;
  shutdown_ = true;
  if (!base_) return Status::Ok();
  return base_->unmount();
}

}  // namespace raefs
