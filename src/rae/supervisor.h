// RaeSupervisor -- the RAE runtime (paper §3.2).
//
// Sits between the application-facing VFS and the base filesystem:
//   - records every mutating operation (and its outcome) in the OpLog,
//     truncating records once the base reports their effects durable;
//   - traps runtime errors: FsPanicError from the base (BUG()/oops class),
//     WARN escalation per policy, and validate-on-sync failures (which
//     also surface as panics);
//   - on error, performs the contained reboot (destroy the base instance,
//     discarding all its in-memory state; replay the journal to reach the
//     trusted on-disk state S0), runs the shadow over the recorded
//     sequence, downloads the shadow's metadata into a freshly mounted
//     base, delivers the in-flight operation's result to the caller, and
//     resumes -- the application never observes the bug;
//   - if the shadow itself refuses (corrupt/crafted image, fatal
//     discrepancy), takes the filesystem offline cleanly (every subsequent
//     operation fails with EIO) instead of crashing the machine.
//
// Concurrency: the supervisor serializes operations with a single lock.
// Recording requires a total order of mutations (paper §3.2: the trace
// "records the order that operations were handled"); this reproduction
// trades the base's internal parallelism for that order. Run BaseFs bare
// for multi-threaded common-case numbers (bench_common_case).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "basefs/base_fs.h"
#include "blockdev/block_device.h"
#include "common/stats.h"
#include "oplog/op_log.h"
#include "rae/executor.h"

namespace raefs {

struct RaeOptions {
  BaseFsOptions base;
  ShadowConfig shadow;

  /// WARN_ON handling: the kernel continues after WARNs; RAE may treat
  /// them as detected errors worth recovering from.
  enum class WarnPolicy : uint8_t {
    kIgnore = 0,          // continue (stock kernel behaviour)
    kRecoverImmediately,  // any WARN triggers recovery
    kRecoverAfterN,       // recovery once `warn_threshold` WARNs accumulate
  };
  WarnPolicy warn_policy = WarnPolicy::kRecoverImmediately;
  uint32_t warn_threshold = 3;

  /// Run the shadow in a forked process (true) or in-process (false).
  bool fork_shadow = false;

  /// Simulated fixed cost of the contained reboot (discarding state,
  /// journal replay bookkeeping, remount) beyond the device IO it does.
  Nanos contained_reboot_cost = 2 * kMilli;

  /// Simulated CPU cost charged once per recovery phase (detection
  /// bookkeeping, containment, hand-off, resume). Keeps every phase of the
  /// detect -> resume timeline visibly nonzero even on a device with no
  /// latency model, so phase breakdowns are always meaningful.
  Nanos phase_bookkeeping_cost = 10 * kMicro;

  /// Transient-fault tolerance (§3.1): how many times to re-run the
  /// shadow when it refuses, before declaring the recovery failed. A
  /// transient device EIO during replay disappears on retry; a corrupt
  /// image refuses identically every time.
  uint32_t shadow_retries = 2;

  /// Transient-fault tolerance for the recovery pipeline's own IO: how
  /// many times to re-run journal replay (reboot phase) and the metadata
  /// download when they fail with a device error, before declaring the
  /// recovery failed. Both are idempotent -- replay reapplies the same
  /// committed transactions and the download installs the same shadow
  /// blocks -- so re-running the phase after a transient EIO is safe.
  uint32_t recovery_io_retries = 2;

  // --- recovery parallelism & verification (docs/RECOVERY.md) ----------

  /// Worker threads for journal replay during the reboot phase. Replay is
  /// batched latest-wins per target block and the writes partitioned by
  /// block range, so any worker count produces a byte-identical image;
  /// 1 keeps the serial reference path. 0 = auto: derive the count from
  /// the device's probed effective queue depth (blockdev/qdepth_probe.h),
  /// measured once per device and recorded in the incident report.
  uint32_t journal_replay_workers = 1;

  /// Worker threads for post-recovery fsck (the verify phase below and
  /// any supervisor-driven checks). Parallelism only prefetches; findings
  /// are byte-identical to a serial run. 1 keeps the serial path; 0 =
  /// auto (probed queue depth, as above). The shadow replay's worker
  /// count is `shadow.replay_workers` (also 0 = auto); the bulk install's
  /// is `base.install_workers`.
  uint32_t fsck_workers = 1;

  /// After the download phase, snapshot the device, replay the journal on
  /// the snapshot and run a strict fsck over it before re-admitting
  /// operations; any fatal finding fails the recovery (offline) rather
  /// than resuming on a state the checker rejects. Requires a
  /// SnapshotCapable device (skipped, with a flight-recorder note,
  /// otherwise). Adds a verify phase to the downtime breakdown.
  bool verify_after_recovery = false;

  /// Bound on op-log memory. When live records exceed this, the
  /// supervisor forces a sync so the durable watermark advances and the
  /// log truncates -- recording stays practical no matter how rarely the
  /// application syncs (0 = unbounded).
  size_t max_oplog_bytes = 64ull << 20;

  /// When non-empty, every recovery rewrites this file with the full
  /// incident log as JSON (obs/incident.h), so the forensic artifact
  /// survives the process. `raefs` points it at `<image>.incidents.json`.
  std::string incident_path;
};

struct RaeStats {
  uint64_t recoveries = 0;
  uint64_t failed_recoveries = 0;
  uint64_t shadow_retries = 0;  // transient shadow refusals retried
  uint64_t recovery_io_retries = 0;  // replay/download phases re-run
  uint64_t download_retries = 0;  // download-phase installs re-attempted
  // Effective queue depth from the mount-time probe; 0 until some worker
  // knob set to 0 (= auto) forces a probe.
  uint32_t autotuned_qdepth = 0;
  uint64_t panics_trapped = 0;
  uint64_t warn_recoveries = 0;
  uint64_t ops_replayed_total = 0;
  uint64_t discrepancies_total = 0;
  uint64_t scrubs = 0;
  uint64_t scrub_discrepancies = 0;
  uint64_t forced_syncs = 0;  // op-log memory cap reached
  Nanos total_downtime = 0;
  LatencyHistogram recovery_time;
  std::string last_failure;

  // Cumulative simulated time per recovery phase (paper Figure 3's
  // breakdown: detect -> contain -> reboot -> replay -> download ->
  // [verify ->] resume). Sums to total_downtime for successfully
  // completed recoveries.
  Nanos detect_ns = 0;
  Nanos contain_ns = 0;
  Nanos reboot_ns = 0;
  Nanos replay_ns = 0;
  Nanos download_ns = 0;
  Nanos verify_ns = 0;  // 0 unless verify_after_recovery
  Nanos resume_ns = 0;
};

class RaeSupervisor {
 public:
  /// Mount `dev` (already mkfs'ed) under RAE supervision.
  static Result<std::unique_ptr<RaeSupervisor>> start(BlockDevice* dev,
                                                      const RaeOptions& opts,
                                                      SimClockPtr clock,
                                                      BugRegistry* bugs);
  ~RaeSupervisor();

  RaeSupervisor(const RaeSupervisor&) = delete;
  RaeSupervisor& operator=(const RaeSupervisor&) = delete;

  // --- application-facing API (mirrors BaseFs) --------------------------
  Result<Ino> lookup(std::string_view path);
  Result<Ino> create(std::string_view path, uint16_t mode);
  Result<Ino> mkdir(std::string_view path, uint16_t mode);
  Status unlink(std::string_view path);
  Status rmdir(std::string_view path);
  Status rename(std::string_view src, std::string_view dst);
  Status link(std::string_view existing, std::string_view newpath);
  Result<Ino> symlink(std::string_view linkpath, std::string_view target);
  Result<std::string> readlink(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path);
  Result<StatResult> stat(std::string_view path);
  Result<StatResult> stat_ino(Ino ino);
  Result<std::vector<uint8_t>> read(Ino ino, uint64_t gen, FileOff off,
                                    uint64_t len);
  Result<uint64_t> write(Ino ino, uint64_t gen, FileOff off,
                         std::span<const uint8_t> data);
  Status truncate(Ino ino, uint64_t gen, uint64_t new_size);
  Status fsync(Ino ino);
  Status sync();

  /// Clean shutdown: commit, checkpoint, mark clean. The supervisor is
  /// unusable afterwards.
  Status shutdown();

  /// Online scrub (paper §4.3's testing phase, as a runtime feature):
  /// snapshot the device, replay the journal on the snapshot, run the
  /// shadow over the current op log in constrained mode, and report any
  /// base/shadow outcome discrepancies. With `deep`, additionally
  /// materialize the shadow's reconstruction on the snapshot and compare
  /// ESSENTIAL STATE (names, sizes, nlink, full file contents) against
  /// the live base -- the only detector for silent data corruption,
  /// which metadata validation, fsck and outcome cross-checks all miss.
  /// Requires a SnapshotCapable device; kNotSup otherwise. Operations
  /// are blocked for the duration.
  Result<ShadowOutcome> scrub(bool deep = false);

  // --- introspection ------------------------------------------------------
  const RaeStats& stats() const { return stats_; }
  OpLogStats oplog_stats() const { return oplog_.stats(); }
  BaseFsStats base_stats() const;
  const WarnSink& warn_sink() const { return warns_; }
  bool offline() const { return offline_; }
  /// Why the supervisor went offline (empty if it has not).
  const std::string& offline_reason() const { return stats_.last_failure; }

 private:
  RaeSupervisor(BlockDevice* dev, const RaeOptions& opts, SimClockPtr clock,
                BugRegistry* bugs);

  Status mount_base();
  void hook_base();

  /// Full recovery pipeline. `inflight_seq` identifies the op whose
  /// execution raised the error (0 = none, e.g. WARN-triggered recovery).
  /// On success returns the shadow outcome so callers can extract the
  /// in-flight result. On failure the supervisor is offline.
  Result<ShadowOutcome> recover(const FaultSite& site, Seq inflight_seq);

  /// Re-issue an in-flight sync after hand-off (paper §3.3). One retry;
  /// if it panics again a second recovery runs with an empty log.
  Status retry_sync_after_recovery();

  /// All mutating ops funnel through here (their scalar results all fit
  /// in a uint64_t: new ino, bytes written, or 0).
  Result<uint64_t> run_mutation_u64(
      OpRequest req, const std::function<Result<uint64_t>(BaseFs&)>& fn);
  template <typename T>
  Result<T> run_read(OpRequest probe,
                     const std::function<Result<T>(BaseFs&)>& fn,
                     const std::function<Result<T>(const OpOutcome&)>&
                         from_shadow);
  void maybe_recover_for_warns();

  BlockDevice* dev_;
  RaeOptions opts_;
  SimClockPtr clock_;
  BugRegistry* bugs_;
  WarnSink warns_;
  std::unique_ptr<ShadowExecutor> executor_;

  std::mutex mu_;  // serializes all operations and recovery
  std::unique_ptr<BaseFs> base_;
  OpLog oplog_;
  RaeStats stats_;
  bool offline_ = false;
  bool shutdown_ = false;

  // Exports RaeStats + op-log occupancy into the global metrics registry.
  // Deliberately does NOT take mu_ (snapshot holds the registry lock and
  // mount paths register collectors while holding mu_); sampled values may
  // be a moment stale, never dangling.
  obs::MetricsRegistry::CollectorHandle obs_collector_;
};

}  // namespace raefs
