#include "rae/supervisor.h"

#include <fstream>

#include "blockdev/qdepth_probe.h"
#include "common/log.h"
#include "fsck/fsck.h"
#include "journal/journal.h"
#include "obs/flight_recorder.h"
#include "obs/incident.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "oplog/payload.h"
#include "rae/state_compare.h"

namespace raefs {
namespace {

/// Flight-recorder tail for an incident report: the last `limit` events,
/// formatted like FlightRecorder::dump lines (one string each).
std::vector<std::string> flight_tail_lines(size_t limit) {
  std::vector<obs::FlightEvent> events = obs::flight().snapshot();
  size_t begin = events.size() > limit ? events.size() - limit : 0;
  std::vector<std::string> out;
  out.reserve(events.size() - begin);
  for (size_t i = begin; i < events.size(); ++i) {
    const obs::FlightEvent& ev = events[i];
    std::string line = "t=" + format_nanos(ev.t) + " [" +
                       obs::to_string(ev.component) + "] " + ev.kind;
    if (ev.detail[0] != '\0') {
      line += " ";
      line += ev.detail;
    }
    if (ev.a != 0 || ev.b != 0 || ev.c != 0) {
      line += " a=" + std::to_string(ev.a) + " b=" + std::to_string(ev.b) +
              " c=" + std::to_string(ev.c);
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// Persist the full incident log next to the image (best effort: a write
/// failure must never turn a successful recovery into an error).
void write_incidents_file(const std::string& path) {
  if (path.empty()) return;
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    RAEFS_LOG_WARN("rae") << "cannot write incident file " << path;
    return;
  }
  f << obs::incidents().to_json();
}

}  // namespace

// ---------------------------------------------------------------------------
// lifecycle
// ---------------------------------------------------------------------------

RaeSupervisor::RaeSupervisor(BlockDevice* dev, const RaeOptions& opts,
                             SimClockPtr clock, BugRegistry* bugs)
    : dev_(dev),
      opts_(opts),
      clock_(std::move(clock)),
      bugs_(bugs),
      executor_(make_executor(opts.fork_shadow)) {}

Result<std::unique_ptr<RaeSupervisor>> RaeSupervisor::start(
    BlockDevice* dev, const RaeOptions& opts, SimClockPtr clock,
    BugRegistry* bugs) {
  std::unique_ptr<RaeSupervisor> sup(
      new RaeSupervisor(dev, opts, std::move(clock), bugs));
  RAEFS_TRY_VOID(sup->mount_base());
  RaeSupervisor* raw = sup.get();
  sup->obs_collector_ = obs::metrics().register_collector(
      [raw](obs::MetricsSink& sink) {
        const RaeStats& s = raw->stats_;
        sink.counter(obs::kMRaeRecoveries, s.recoveries);
        sink.counter(obs::kMRaeRecoveriesFailed, s.failed_recoveries);
        sink.counter(obs::kMRaePanicsTrapped, s.panics_trapped);
        sink.counter(obs::kMRaeWarnRecoveries, s.warn_recoveries);
        sink.counter(obs::kMRaeShadowRetries, s.shadow_retries);
        sink.counter(obs::kMRaeOpsReplayed, s.ops_replayed_total);
        sink.counter(obs::kMRaeDiscrepancies, s.discrepancies_total);
        sink.counter(obs::kMRaeScrubs, s.scrubs);
        sink.counter(obs::kMRaeScrubDiscrepancies, s.scrub_discrepancies);
        sink.counter(obs::kMRaeForcedSyncs, s.forced_syncs);
        sink.counter(obs::kMRaeDownloadRetries, s.download_retries);
        if (s.autotuned_qdepth != 0) {
          sink.gauge(obs::kMRaeAutotuneQdepth,
                     static_cast<int64_t>(s.autotuned_qdepth));
        }
        sink.counter(obs::kMRaeDowntimeNs, s.total_downtime);
        sink.counter(obs::kMRaeRecoveryDetectNs, s.detect_ns);
        sink.counter(obs::kMRaeRecoveryContainNs, s.contain_ns);
        sink.counter(obs::kMRaeRecoveryRebootNs, s.reboot_ns);
        sink.counter(obs::kMRaeRecoveryReplayNs, s.replay_ns);
        sink.counter(obs::kMRaeRecoveryDownloadNs, s.download_ns);
        sink.counter(obs::kMRaeRecoveryVerifyNs, s.verify_ns);
        sink.counter(obs::kMRaeRecoveryResumeNs, s.resume_ns);
        sink.histogram(obs::kMRaeRecoveryTimeNs, s.recovery_time);
        OpLogStats ol = raw->oplog_stats();
        sink.gauge(obs::kMRaeOplogLiveRecords,
                   static_cast<int64_t>(ol.live_records));
        sink.gauge(obs::kMRaeOplogLiveBytes,
                   static_cast<int64_t>(ol.live_bytes));
      });
  return sup;
}

RaeSupervisor::~RaeSupervisor() = default;

Status RaeSupervisor::mount_base() {
  RAEFS_TRY(base_, BaseFs::mount(dev_, opts_.base, clock_, bugs_, &warns_));
  hook_base();
  return Status::Ok();
}

void RaeSupervisor::hook_base() {
  base_->set_durable_callback(
      [this](Seq seq) { oplog_.truncate_durable(seq); });
}

Status RaeSupervisor::shutdown() {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) return Errno::kInval;
  shutdown_ = true;
  if (offline_ || !base_) return Status::Ok();
  return base_->unmount();
}

BaseFsStats RaeSupervisor::base_stats() const {
  return base_ ? base_->stats() : BaseFsStats{};
}

Result<ShadowOutcome> RaeSupervisor::scrub(bool deep) {
  // The lock is held throughout: the snapshot, the op-log capture, and
  // (for deep mode) the comparison against the live base must all see one
  // consistent moment. Shallow scrubs are short; deep scrubs block
  // operations for the duration -- a maintenance trade-off.
  obs::OpScope op;
  std::lock_guard<std::mutex> lk(mu_);
  if (offline_ || shutdown_ || !base_) return Errno::kIo;
  auto* capable = dynamic_cast<SnapshotCapable*>(dev_);
  if (capable == nullptr) return Errno::kNotSup;
  obs::TraceSpan span(obs::kSpanScrub, clock_.get());
  std::unique_ptr<BlockDevice> snap = capable->snapshot();
  std::vector<OpRecord> log = oplog_.snapshot();
  Geometry geo = base_->geometry();

  if (!Journal::replay(snap.get(), geo).ok()) return Errno::kIo;
  ShadowOutcome outcome =
      executor_->execute(snap.get(), log, opts_.shadow, clock_);

  if (outcome.ok && deep) {
    // Materialize the shadow's reconstruction on the scratch snapshot and
    // compare ESSENTIAL STATE (content included) against the live base:
    // catches silent data corruption nothing else can see.
    bool applied = true;
    for (const auto& ib : outcome.dirty) {
      if (!snap->write_block(ib.block, ib.data).ok()) applied = false;
    }
    if (applied && snap->flush().ok()) {
      auto reference = BaseFs::mount(snap.get(), BaseFsOptions{});
      if (reference.ok()) {
        auto diff = state_compare::diff_essential_state(*reference.value(),
                                                        *base_);
        if (!diff.empty()) {
          outcome.discrepancies.push_back(
              Discrepancy{0, "deep-scrub state divergence:\n" + diff});
        }
      }
    }
  }

  for (const auto& d : outcome.discrepancies) {
    RAEFS_LOG_WARN("rae") << "scrub discrepancy: " << d.description;
  }
  ++stats_.scrubs;
  stats_.scrub_discrepancies += outcome.discrepancies.size();
  obs::flight().record(obs::Component::kRae, "scrub", deep ? "deep" : "shallow",
                       clock_ ? clock_->now() : 0, outcome.ops_replayed,
                       outcome.discrepancies.size());
  return outcome;
}

// ---------------------------------------------------------------------------
// recovery pipeline
// ---------------------------------------------------------------------------

Result<ShadowOutcome> RaeSupervisor::recover(const FaultSite& site,
                                             Seq inflight_seq) {
  Nanos t0 = clock_ ? clock_->now() : 0;
  ++stats_.recoveries;
  RAEFS_LOG_INFO("rae") << "recovery triggered by " << site.function << ": "
                        << site.detail;
  obs::flight().record(obs::Component::kRae, "recover.begin", site.function,
                       t0, stats_.recoveries);
  obs::TraceSpan rspan(obs::kSpanRecovery, clock_.get());

  // One forensic artifact per recovery. The flight tail is captured NOW,
  // before the pipeline's own events: the interesting history is what led
  // up to the trip.
  obs::Incident inc;
  inc.t_begin = t0;
  inc.bug_id = site.bug_id;
  inc.trigger_function = site.function;
  inc.trigger_detail = site.detail;
  inc.failed_op_seq = inflight_seq;
  inc.op_id = obs::tls_op_context().op_id;
  inc.tid = static_cast<uint32_t>(this_thread_log_id());
  inc.flight_tail = flight_tail_lines(16);

  auto now = [&]() -> Nanos { return clock_ ? clock_->now() : 0; };
  auto charge_phase = [&] {
    if (clock_ && opts_.phase_bookkeeping_cost) {
      clock_->advance(opts_.phase_bookkeeping_cost);
    }
  };
  // Each phase is one scoped span (child of the recovery span), its
  // duration accumulated into the RaeStats per-phase fields -- which the
  // collector exports as the rae.recovery.*_ns counters (accumulating
  // them here as owned counters too would double-count in snapshots) --
  // and into this recovery's incident report.
  Nanos phase_begin = t0;
  auto end_phase = [&](Nanos RaeStats::*field, Nanos obs::Incident::*ifield) {
    Nanos d = now() - phase_begin;
    stats_.*field += d;
    inc.*ifield += d;
    phase_begin = now();
  };

  auto file_incident = [&] {
    inc.t_end = now();
    inc.forced_syncs = stats_.forced_syncs;
    obs::incidents().append(inc);
    write_incidents_file(opts_.incident_path);
  };

  auto fail = [&](std::string why) -> Errno {
    ++stats_.failed_recoveries;
    stats_.last_failure = std::move(why);
    offline_ = true;
    if (clock_) {
      Nanos dt = clock_->now() - t0;
      stats_.total_downtime += dt;
      inc.downtime_ns = dt;
    }
    RAEFS_LOG_ERROR("rae") << "recovery FAILED, filesystem offline: "
                           << stats_.last_failure;
    obs::flight().record(obs::Component::kRae, "recover.fail",
                         stats_.last_failure, now());
    obs::flight().dump_now("recovery failed: " + stats_.last_failure);
    inc.ok = false;
    inc.failure = stats_.last_failure;
    file_incident();
    return Errno::kCorrupt;
  };

  // Detect: the error has been trapped; classify and account for it
  // before touching any state.
  {
    obs::TraceSpan ps(obs::kSpanRecoveryDetect, clock_.get(), rspan.id());
    charge_phase();
  }
  end_phase(&RaeStats::detect_ns, &obs::Incident::detect_ns);

  // Contain: discard every byte of the base's in-memory state -- all of
  // it is untrusted after the error.
  Geometry geo = base_ ? base_->geometry() : Geometry{};
  {
    obs::TraceSpan ps(obs::kSpanRecoveryContain, clock_.get(), rspan.id());
    base_.reset();
    charge_phase();
  }
  end_phase(&RaeStats::contain_ns, &obs::Incident::contain_ns);

  // Resolve the `0 = auto` worker knobs once per recovery from the
  // device's probed effective queue depth (cached per device, so only the
  // first auto recovery pays the probe). The chosen counts go into the
  // incident report so a forensic reader can see what the autotuner did.
  const bool any_auto =
      opts_.journal_replay_workers == 0 || opts_.fsck_workers == 0 ||
      opts_.shadow.replay_workers == 0 || opts_.base.install_workers == 0;
  if (any_auto) {
    stats_.autotuned_qdepth = cached_queue_depth(dev_).effective_depth;
  }
  const uint32_t replay_workers =
      resolve_workers(opts_.journal_replay_workers, dev_);
  const uint32_t fsck_workers = resolve_workers(opts_.fsck_workers, dev_);
  ShadowConfig shadow_cfg = opts_.shadow;
  shadow_cfg.replay_workers = resolve_workers(shadow_cfg.replay_workers, dev_);
  inc.autotuned_qdepth = stats_.autotuned_qdepth;
  inc.journal_replay_workers = replay_workers;
  inc.fsck_workers = fsck_workers;
  inc.shadow_replay_workers = shadow_cfg.replay_workers;
  inc.install_workers = resolve_workers(opts_.base.install_workers, dev_);

  // Reboot: pay the contained-reboot cost and reach the trusted on-disk
  // state S0 via journal replay.
  {
    obs::TraceSpan ps(obs::kSpanRecoveryReboot, clock_.get(), rspan.id());
    if (clock_) clock_->advance(opts_.contained_reboot_cost);
    if (geo.total_blocks == 0) {
      end_phase(&RaeStats::reboot_ns, &obs::Incident::reboot_ns);
      return fail("no geometry available");
    }
    obs::TraceSpan js(obs::kSpanJournalReplay, clock_.get(), ps.id());
    // Replay is idempotent; a transient device error mid-replay vanishes
    // on a re-run, so don't take the filesystem offline for one EIO.
    auto replay = Journal::replay(dev_, geo, replay_workers);
    for (uint32_t attempt = 0;
         !replay.ok() && attempt < opts_.recovery_io_retries; ++attempt) {
      ++stats_.recovery_io_retries;
      RAEFS_LOG_WARN("rae") << "journal replay attempt " << attempt + 1
                            << " failed; retrying";
      replay = Journal::replay(dev_, geo, replay_workers);
    }
    js.end();
    if (!replay.ok()) {
      end_phase(&RaeStats::reboot_ns, &obs::Incident::reboot_ns);
      return fail("journal replay failed");
    }
  }
  end_phase(&RaeStats::reboot_ns, &obs::Incident::reboot_ns);

  // Replay: run the shadow over the recorded operation sequence. A
  // refusal is retried a configurable number of times: transient device
  // faults during replay vanish on retry, while genuine image corruption
  // refuses identically every attempt (§3.1 fault model).
  auto log = oplog_.snapshot();
  ShadowOutcome outcome;
  {
    obs::TraceSpan ps(obs::kSpanRecoveryReplay, clock_.get(), rspan.id());
    for (uint32_t attempt = 0; attempt <= opts_.shadow_retries; ++attempt) {
      if (attempt > 0) {
        ++stats_.shadow_retries;
        ++inc.shadow_retries;
      }
      outcome = executor_->execute(dev_, log, shadow_cfg, clock_);
      if (outcome.ok) break;
      RAEFS_LOG_WARN("rae") << "shadow attempt " << attempt + 1
                            << " refused: " << outcome.failure;
    }
    charge_phase();
  }
  stats_.ops_replayed_total += outcome.ops_replayed;
  stats_.discrepancies_total += outcome.discrepancies.size();
  inc.ops_replayed = outcome.ops_replayed;
  inc.discrepancies = outcome.discrepancies.size();
  for (const auto& d : outcome.discrepancies) {
    RAEFS_LOG_WARN("rae") << "shadow discrepancy: " << d.description;
  }
  end_phase(&RaeStats::replay_ns, &obs::Incident::replay_ns);
  if (!outcome.ok) return fail("shadow refused: " + outcome.failure);

  // Download: reboot the base and absorb the shadow's metadata (hand-off).
  {
    obs::TraceSpan ps(obs::kSpanRecoveryDownload, clock_.get(), rspan.id());
    // The download is idempotent (it installs the same shadow blocks), so
    // a transient IO error mid-install is survivable: replay the journal
    // to clear any torn install transaction, remount, and install again.
    // A base panic is NOT retried -- the shadow output deterministically
    // trips an invariant and would panic identically every attempt.
    Status downloaded = Errno::kIo;
    for (uint32_t attempt = 0; attempt <= opts_.recovery_io_retries;
         ++attempt) {
      // Each attempt gets its own child span so a trace of a flaky device
      // shows every re-run (and what it cost), not one opaque phase.
      obs::TraceSpan as(obs::kSpanRecoveryDownloadAttempt, clock_.get(),
                        ps.id());
      if (attempt > 0) {
        ++stats_.recovery_io_retries;
        ++stats_.download_retries;
        ++inc.download_retries;
        RAEFS_LOG_WARN("rae")
            << "metadata download attempt " << attempt
            << " failed; replaying journal and retrying";
        base_.reset();
        auto rereplay = Journal::replay(dev_, geo, replay_workers);
        if (!rereplay.ok()) continue;
      }
      Status mounted = mount_base();
      if (!mounted.ok()) {
        downloaded = mounted;
        continue;
      }
      try {
        downloaded = base_->install_blocks(outcome.dirty);
      } catch (const FsPanicError& e) {
        end_phase(&RaeStats::download_ns, &obs::Incident::download_ns);
        return fail(std::string("base panicked absorbing shadow output: ") +
                    e.what());
      }
      if (downloaded.ok()) break;
    }
    if (!downloaded.ok()) {
      end_phase(&RaeStats::download_ns, &obs::Incident::download_ns);
      return fail("metadata download failed");
    }
    charge_phase();
  }
  end_phase(&RaeStats::download_ns, &obs::Incident::download_ns);

  // Verify (optional): prove the recovered on-disk state is consistent
  // before re-admitting operations. The check runs on a journal-replayed
  // snapshot -- the state a crash right now would recover to -- so the
  // live base and journal stay untouched. A fatal fsck finding means the
  // recovery produced a state the checker rejects: going offline beats
  // resuming on it.
  if (opts_.verify_after_recovery) {
    obs::TraceSpan ps(obs::kSpanRecoveryVerify, clock_.get(), rspan.id());
    auto* capable = dynamic_cast<SnapshotCapable*>(dev_);
    if (capable == nullptr) {
      obs::flight().record(obs::Component::kRae, "verify.skipped",
                           "device not snapshot-capable", now());
    } else {
      std::unique_ptr<BlockDevice> snap = capable->snapshot();
      auto replayed = Journal::replay(snap.get(), geo, replay_workers);
      if (!replayed.ok()) {
        end_phase(&RaeStats::verify_ns, &obs::Incident::verify_ns);
        return fail("post-recovery verify: journal replay on snapshot "
                    "failed");
      }
      FsckOptions fo;
      fo.level = FsckLevel::kStrict;
      fo.workers = fsck_workers;
      auto report = fsck(snap.get(), fo);
      if (!report.ok()) {
        end_phase(&RaeStats::verify_ns, &obs::Incident::verify_ns);
        return fail("post-recovery verify: fsck errored");
      }
      if (!report.value().consistent()) {
        end_phase(&RaeStats::verify_ns, &obs::Incident::verify_ns);
        return fail("post-recovery verify: fsck found fatal "
                    "inconsistencies: " +
                    report.value().summary());
      }
      obs::flight().record(obs::Component::kRae, "verify.ok", "", now(),
                           report.value().inodes_in_use,
                           report.value().blocks_claimed);
    }
    charge_phase();
  }
  end_phase(&RaeStats::verify_ns, &obs::Incident::verify_ns);

  // Resume: close the gap and re-admit operations.
  {
    obs::TraceSpan ps(obs::kSpanRecoveryResume, clock_.get(), rspan.id());
    // The recovered state is durable; the gap is closed.
    oplog_.clear();
    warns_.clear();

    // Re-issue any in-flight sync (paper §3.3).
    if (!outcome.inflight_retry_syncs.empty()) {
      Status synced = retry_sync_after_recovery();
      if (!synced.ok()) {
        end_phase(&RaeStats::resume_ns, &obs::Incident::resume_ns);
        return fail("post-recovery sync retry failed");
      }
    }
    charge_phase();
  }
  end_phase(&RaeStats::resume_ns, &obs::Incident::resume_ns);

  if (clock_) {
    Nanos dt = clock_->now() - t0;
    stats_.total_downtime += dt;
    stats_.recovery_time.record(dt);
    inc.downtime_ns = dt;
  }
  obs::flight().record(obs::Component::kRae, "recover.end", site.function,
                       now(), outcome.ops_replayed,
                       outcome.discrepancies.size());
  obs::flight().dump_now("recovery completed");
  inc.ok = true;
  file_incident();
  return outcome;
}

Status RaeSupervisor::retry_sync_after_recovery() {
  try {
    return base_->sync();
  } catch (const FsPanicError& e) {
    ++stats_.panics_trapped;
    // One nested recovery (the op log is empty now), then a final retry.
    auto rec = recover(e.site(), 0);
    if (!rec.ok()) return Errno::kIo;
    try {
      return base_->sync();
    } catch (const FsPanicError& e2) {
      stats_.last_failure =
          std::string("sync re-panicked after recovery: ") + e2.what();
      offline_ = true;
      return Errno::kIo;
    }
  }
}

void RaeSupervisor::maybe_recover_for_warns() {
  if (opts_.warn_policy == RaeOptions::WarnPolicy::kIgnore) return;
  uint64_t count = warns_.count();
  if (count == 0) return;
  bool trigger =
      opts_.warn_policy == RaeOptions::WarnPolicy::kRecoverImmediately ||
      count >= opts_.warn_threshold;
  if (!trigger) return;
  ++stats_.warn_recoveries;
  auto events = warns_.events();
  FaultSite site = events.empty() ? FaultSite{"warn", "escalation", -1}
                                  : events.back().site;
  obs::flight().record(obs::Component::kRae, "warn_escalation", site.function,
                       clock_ ? clock_->now() : 0, count);
  (void)recover(site, 0);
}

// ---------------------------------------------------------------------------
// operation plumbing
// ---------------------------------------------------------------------------

namespace {

/// Pack a base-filesystem result into the recorded outcome, by op kind.
OpOutcome pack_outcome(OpKind kind, Errno err, uint64_t value) {
  OpOutcome out;
  out.err = err;
  if (err != Errno::kOk) return out;
  switch (kind) {
    case OpKind::kCreate:
    case OpKind::kMkdir:
    case OpKind::kSymlink:
      out.assigned_ino = value;
      break;
    case OpKind::kWrite:
      out.result_len = value;
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

Result<uint64_t> RaeSupervisor::run_mutation_u64(
    OpRequest req, const std::function<Result<uint64_t>(BaseFs&)>& fn) {
  // Operation boundary when the supervisor is driven directly (tests,
  // workloads); under a Vfs the scope inherits the id minted above, so
  // one application call stays one operation.
  obs::OpScope op;
  std::lock_guard<std::mutex> lk(mu_);
  if (offline_ || shutdown_) return Errno::kIo;
  OpKind kind = req.kind;
  req.stamp = clock_ ? clock_->now() : 0;
  if (clock_) {
    // Recording cost: allocate the record + copy the write payload. Tiny
    // next to device IO, but honestly accounted (bench_recording_overhead
    // measures exactly this).
    clock_->advance(100 + static_cast<Nanos>(req.data.size()) / 8);
  }
  obs::flight().record(obs::Component::kRae, to_string(req.kind), req.path,
                       req.stamp, req.ino, static_cast<uint64_t>(req.offset),
                       req.data.empty() ? req.len : req.data.size());
  Seq seq = oplog_.append_started(std::move(req));
  base_->set_current_op_seq(seq);
  try {
    Result<uint64_t> result = fn(*base_);
    oplog_.complete(seq, pack_outcome(kind, result.ok() ? Errno::kOk
                                                        : result.error(),
                                      result.ok() ? result.value() : 0));
    if (op_is_sync(kind) && result.ok()) {
      // A successful sync made everything before it durable, including
      // records the durable callback's watermark missed (its own seq).
      oplog_.truncate_durable(seq);
    } else if (opts_.max_oplog_bytes > 0 &&
               oplog_.stats().live_bytes > opts_.max_oplog_bytes) {
      // Bound recording memory: force the gap closed (the app never asked
      // for this sync, so its failure is not the app's problem -- a panic
      // here flows through the normal recovery path on the next op).
      ++stats_.forced_syncs;
      try {
        if (base_->sync().ok()) oplog_.truncate_durable(seq);
      } catch (const FsPanicError& e) {
        ++stats_.panics_trapped;
        (void)recover(e.site(), 0);
      }
    }
    maybe_recover_for_warns();
    return result;
  } catch (const FsPanicError& e) {
    ++stats_.panics_trapped;
    auto rec = recover(e.site(), seq);
    if (!rec.ok()) return Errno::kIo;
    if (op_is_sync(kind)) {
      // recover() already re-issued the sync (inflight_retry_syncs).
      return uint64_t{0};
    }
    for (const auto& [s, out] : rec.value().inflight_results) {
      if (s != seq) continue;
      if (out.err != Errno::kOk) return out.err;
      switch (kind) {
        case OpKind::kCreate:
        case OpKind::kMkdir:
        case OpKind::kSymlink:
          return out.assigned_ino;
        case OpKind::kWrite:
          return out.result_len;
        default:
          return uint64_t{0};
      }
    }
    // The shadow produced no result for the in-flight op: refuse rather
    // than guess.
    return Errno::kIo;
  }
}

// ---------------------------------------------------------------------------
// mutating operations
// ---------------------------------------------------------------------------

Result<Ino> RaeSupervisor::create(std::string_view path, uint16_t mode) {
  OpRequest req;
  req.kind = OpKind::kCreate;
  req.path = std::string(path);
  req.mode = mode;
  RAEFS_TRY(uint64_t ino, run_mutation_u64(std::move(req), [&](BaseFs& fs) {
              return fs.create(path, mode);
            }));
  return Ino{ino};
}

Result<Ino> RaeSupervisor::mkdir(std::string_view path, uint16_t mode) {
  OpRequest req;
  req.kind = OpKind::kMkdir;
  req.path = std::string(path);
  req.mode = mode;
  RAEFS_TRY(uint64_t ino, run_mutation_u64(std::move(req), [&](BaseFs& fs) {
              return fs.mkdir(path, mode);
            }));
  return Ino{ino};
}

Result<Ino> RaeSupervisor::symlink(std::string_view linkpath,
                                   std::string_view target) {
  OpRequest req;
  req.kind = OpKind::kSymlink;
  req.path = std::string(linkpath);
  req.path2 = std::string(target);
  RAEFS_TRY(uint64_t ino, run_mutation_u64(std::move(req), [&](BaseFs& fs) {
              return fs.symlink(linkpath, target);
            }));
  return Ino{ino};
}

namespace {
Result<uint64_t> as_u64(Status st) {
  if (!st.ok()) return st.error();
  return uint64_t{0};
}
}  // namespace

Status RaeSupervisor::unlink(std::string_view path) {
  OpRequest req;
  req.kind = OpKind::kUnlink;
  req.path = std::string(path);
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.unlink(path));
  }));
  return Status::Ok();
}

Status RaeSupervisor::rmdir(std::string_view path) {
  OpRequest req;
  req.kind = OpKind::kRmdir;
  req.path = std::string(path);
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.rmdir(path));
  }));
  return Status::Ok();
}

Status RaeSupervisor::rename(std::string_view src, std::string_view dst) {
  OpRequest req;
  req.kind = OpKind::kRename;
  req.path = std::string(src);
  req.path2 = std::string(dst);
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.rename(src, dst));
  }));
  return Status::Ok();
}

Status RaeSupervisor::link(std::string_view existing,
                           std::string_view newpath) {
  OpRequest req;
  req.kind = OpKind::kLink;
  req.path = std::string(existing);
  req.path2 = std::string(newpath);
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.link(existing, newpath));
  }));
  return Status::Ok();
}

Result<uint64_t> RaeSupervisor::write(Ino ino, uint64_t gen, FileOff off,
                                      std::span<const uint8_t> data) {
  OpRequest req;
  req.kind = OpKind::kWrite;
  req.ino = ino;
  req.gen = gen;
  req.offset = off;
  req.data.assign(data.begin(), data.end());
  return run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return fs.write(ino, gen, off, data);
  });
}

Status RaeSupervisor::truncate(Ino ino, uint64_t gen, uint64_t new_size) {
  OpRequest req;
  req.kind = OpKind::kTruncate;
  req.ino = ino;
  req.gen = gen;
  req.len = new_size;
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.truncate(ino, gen, new_size));
  }));
  return Status::Ok();
}

Status RaeSupervisor::fsync(Ino ino) {
  OpRequest req;
  req.kind = OpKind::kFsync;
  req.ino = ino;
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.fsync(ino));
  }));
  return Status::Ok();
}

Status RaeSupervisor::sync() {
  OpRequest req;
  req.kind = OpKind::kSync;
  RAEFS_TRY_VOID(run_mutation_u64(std::move(req), [&](BaseFs& fs) {
    return as_u64(fs.sync());
  }));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// read operations
// ---------------------------------------------------------------------------

// Reads are not recorded (they widen no app/disk gap). When one triggers
// an error, a synthetic in-flight record is appended to the shadow's input
// so the shadow executes it autonomously -- the base never re-runs the
// trigger (error avoidance for read-path deterministic bugs).
template <typename T>
Result<T> RaeSupervisor::run_read(
    OpRequest probe, const std::function<Result<T>(BaseFs&)>& fn,
    const std::function<Result<T>(const OpOutcome&)>& from_shadow) {
  obs::OpScope op;
  std::lock_guard<std::mutex> lk(mu_);
  if (offline_ || shutdown_) return Errno::kIo;
  try {
    Result<T> result = fn(*base_);
    maybe_recover_for_warns();
    return result;
  } catch (const FsPanicError& e) {
    ++stats_.panics_trapped;
    probe.stamp = clock_ ? clock_->now() : 0;
    obs::flight().record(obs::Component::kRae, to_string(probe.kind),
                         probe.path, probe.stamp, probe.ino,
                         static_cast<uint64_t>(probe.offset), probe.len);
    Seq seq = oplog_.append_started(std::move(probe));
    auto rec = recover(e.site(), seq);
    if (!rec.ok()) return Errno::kIo;
    for (const auto& [s, out] : rec.value().inflight_results) {
      if (s == seq) return from_shadow(out);
    }
    return Errno::kIo;
  }
}

Result<Ino> RaeSupervisor::lookup(std::string_view path) {
  OpRequest probe;
  probe.kind = OpKind::kLookup;
  probe.path = std::string(path);
  return run_read<Ino>(
      std::move(probe), [&](BaseFs& fs) { return fs.lookup(path); },
      [](const OpOutcome& out) -> Result<Ino> {
        if (out.err != Errno::kOk) return out.err;
        return out.assigned_ino;
      });
}

Result<std::string> RaeSupervisor::readlink(std::string_view path) {
  OpRequest probe;
  probe.kind = OpKind::kReadlink;
  probe.path = std::string(path);
  return run_read<std::string>(
      std::move(probe), [&](BaseFs& fs) { return fs.readlink(path); },
      [](const OpOutcome& out) -> Result<std::string> {
        if (out.err != Errno::kOk) return out.err;
        return std::string(out.payload.begin(), out.payload.end());
      });
}

Result<std::vector<DirEntry>> RaeSupervisor::readdir(std::string_view path) {
  OpRequest probe;
  probe.kind = OpKind::kReaddir;
  probe.path = std::string(path);
  return run_read<std::vector<DirEntry>>(
      std::move(probe), [&](BaseFs& fs) { return fs.readdir(path); },
      [](const OpOutcome& out) -> Result<std::vector<DirEntry>> {
        if (out.err != Errno::kOk) return out.err;
        return decode_dirents(out.payload);
      });
}

namespace {
Result<StatResult> stat_from_outcome(const OpOutcome& out) {
  if (out.err != Errno::kOk) return out.err;
  RAEFS_TRY(StatPayload st, decode_stat(out.payload));
  return StatResult{st.ino, st.type, st.size, st.nlink, st.mode,
                    st.generation};
}
}  // namespace

Result<StatResult> RaeSupervisor::stat(std::string_view path) {
  OpRequest probe;
  probe.kind = OpKind::kStat;
  probe.path = std::string(path);
  return run_read<StatResult>(
      std::move(probe), [&](BaseFs& fs) { return fs.stat(path); },
      stat_from_outcome);
}

Result<StatResult> RaeSupervisor::stat_ino(Ino ino) {
  OpRequest probe;
  probe.kind = OpKind::kStat;
  probe.ino = ino;
  return run_read<StatResult>(
      std::move(probe), [&](BaseFs& fs) { return fs.stat_ino(ino); },
      stat_from_outcome);
}

Result<std::vector<uint8_t>> RaeSupervisor::read(Ino ino, uint64_t gen,
                                                 FileOff off, uint64_t len) {
  OpRequest probe;
  probe.kind = OpKind::kRead;
  probe.ino = ino;
  probe.gen = gen;
  probe.offset = off;
  probe.len = len;
  return run_read<std::vector<uint8_t>>(
      std::move(probe),
      [&](BaseFs& fs) { return fs.read(ino, gen, off, len); },
      [](const OpOutcome& out) -> Result<std::vector<uint8_t>> {
        if (out.err != Errno::kOk) return out.err;
        return out.payload;
      });
}

}  // namespace raefs
