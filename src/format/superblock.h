// Superblock: block 0 of every raefs image.
#pragma once

#include <span>
#include <vector>

#include "common/result.h"
#include "format/layout.h"

namespace raefs {

inline constexpr uint64_t kSuperMagic = 0x5241454653463031ull;  // "RAEFSF01"
inline constexpr uint32_t kFormatVersion = 1;

/// Filesystem state recorded in the superblock.
enum class FsState : uint32_t {
  kClean = 0,    // cleanly unmounted
  kMounted = 1,  // mounted; journal may hold committed transactions
};

struct Superblock {
  uint64_t magic = kSuperMagic;
  uint32_t version = kFormatVersion;
  uint32_t block_size = kBlockSize;
  uint64_t total_blocks = 0;
  uint64_t inode_count = 0;
  uint64_t journal_blocks = 0;
  Ino root_ino = kRootIno;
  FsState state = FsState::kClean;
  uint64_t mount_count = 0;

  /// Geometry recomputed from the counts above. Returns kCorrupt when the
  /// recorded counts are not a valid layout.
  Result<Geometry> geometry() const;

  /// Serialize into one block (zero-padded, CRC32C in the final 4 bytes).
  std::vector<uint8_t> encode() const;

  /// Decode and fully validate a superblock image of exactly kBlockSize
  /// bytes. Checks magic, version, block size, CRC, and that the geometry
  /// is internally consistent.
  static Result<Superblock> decode(std::span<const uint8_t> block);
};

}  // namespace raefs
