// Bit manipulation over on-disk bitmap blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace raefs {

/// A mutable view over a contiguous run of bitmap bytes (one or more
/// blocks loaded into memory). Bit i corresponds to object i.
class BitmapView {
 public:
  BitmapView(std::span<uint8_t> bytes, uint64_t nbits)
      : bytes_(bytes), nbits_(nbits) {}

  uint64_t size() const { return nbits_; }

  bool test(uint64_t i) const {
    return (bytes_[i / 8] >> (i % 8)) & 1;
  }
  void set(uint64_t i) { bytes_[i / 8] |= static_cast<uint8_t>(1u << (i % 8)); }
  void clear(uint64_t i) {
    bytes_[i / 8] &= static_cast<uint8_t>(~(1u << (i % 8)));
  }

  /// First clear bit at or after `from`, or nullopt when full.
  std::optional<uint64_t> find_clear(uint64_t from = 0) const;

  /// Number of set bits in [0, nbits).
  uint64_t count_set() const;

 private:
  std::span<uint8_t> bytes_;
  uint64_t nbits_;
};

/// Read-only variant used by the shadow and fsck.
class ConstBitmapView {
 public:
  ConstBitmapView(std::span<const uint8_t> bytes, uint64_t nbits)
      : bytes_(bytes), nbits_(nbits) {}

  uint64_t size() const { return nbits_; }
  bool test(uint64_t i) const { return (bytes_[i / 8] >> (i % 8)) & 1; }
  uint64_t count_set() const;

  /// First clear bit at or after `from`, or nullopt when full.
  std::optional<uint64_t> find_clear(uint64_t from = 0) const;

 private:
  std::span<const uint8_t> bytes_;
  uint64_t nbits_;
};

}  // namespace raefs
