// On-disk inode: 256 bytes, 16 per block, CRC-protected.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/result.h"
#include "format/layout.h"

namespace raefs {

/// The on-disk inode structure. Field order below is the encoding order.
struct DiskInode {
  FileType type = FileType::kNone;
  uint16_t mode = 0;      // permission bits
  uint32_t nlink = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;      // bytes (for dirs: directory data bytes)
  uint64_t atime = 0;     // simulated nanoseconds
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  std::array<BlockNo, kNumDirect> direct{};  // 0 = hole / unallocated
  BlockNo indirect = 0;
  BlockNo dindirect = 0;
  uint64_t generation = 0;  // bumped on every reuse of this ino

  bool in_use() const { return type != FileType::kNone; }

  bool operator==(const DiskInode&) const = default;

  /// Serialize into exactly kInodeSize bytes (CRC32C in the final 4).
  std::vector<uint8_t> encode() const;

  /// Decode kInodeSize bytes; checks CRC and field sanity against `geo`
  /// (type valid, size within kMaxFileSize, all block pointers either 0 or
  /// inside the data region).
  static Result<DiskInode> decode(std::span<const uint8_t> raw,
                                  const Geometry& geo);

  /// Decode without geometry validation (fsck wants to look at invalid
  /// inodes too). Still checks the CRC.
  static Result<DiskInode> decode_raw(std::span<const uint8_t> raw);

  /// Structural sanity against `geo`; kCorrupt on violation.
  Status validate(const Geometry& geo) const;

  /// Number of data blocks implied by `size` (ceil division).
  uint64_t size_blocks() const {
    return (size + kBlockSize - 1) / kBlockSize;
  }
};

/// Read inode `ino` out of an inode-table block image.
Result<DiskInode> inode_from_table_block(std::span<const uint8_t> block,
                                         uint32_t slot, const Geometry& geo);

/// Write `ino`'s encoding into an inode-table block image in place.
void inode_into_table_block(std::span<uint8_t> block, uint32_t slot,
                            const DiskInode& inode);

}  // namespace raefs
