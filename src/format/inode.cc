#include "format/inode.h"

#include <cstring>

#include "common/checksum.h"
#include "common/serial.h"

namespace raefs {

std::vector<uint8_t> DiskInode::encode() const {
  std::vector<uint8_t> out;
  out.reserve(kInodeSize);
  Encoder enc(&out);
  enc.put_u8(static_cast<uint8_t>(type));
  enc.put_u8(0);  // pad
  enc.put_u16(mode);
  enc.put_u32(nlink);
  enc.put_u32(uid);
  enc.put_u32(gid);
  enc.put_u64(size);
  enc.put_u64(atime);
  enc.put_u64(mtime);
  enc.put_u64(ctime);
  for (BlockNo b : direct) enc.put_u64(b);
  enc.put_u64(indirect);
  enc.put_u64(dindirect);
  enc.put_u64(generation);
  out.resize(kInodeSize - 4, 0);
  uint32_t crc = crc32c(out.data(), out.size());
  Encoder tail(&out);
  tail.put_u32(crc);
  return out;
}

Result<DiskInode> DiskInode::decode_raw(std::span<const uint8_t> raw) {
  if (raw.size() != kInodeSize) return Errno::kCorrupt;
  uint32_t stored_crc = static_cast<uint32_t>(raw[kInodeSize - 4]) |
                        (static_cast<uint32_t>(raw[kInodeSize - 3]) << 8) |
                        (static_cast<uint32_t>(raw[kInodeSize - 2]) << 16) |
                        (static_cast<uint32_t>(raw[kInodeSize - 1]) << 24);
  if (crc32c(raw.data(), kInodeSize - 4) != stored_crc) {
    return Errno::kCorrupt;
  }
  Decoder dec(raw);
  DiskInode n;
  n.type = static_cast<FileType>(dec.get_u8());
  dec.skip(1);
  n.mode = dec.get_u16();
  n.nlink = dec.get_u32();
  n.uid = dec.get_u32();
  n.gid = dec.get_u32();
  n.size = dec.get_u64();
  n.atime = dec.get_u64();
  n.mtime = dec.get_u64();
  n.ctime = dec.get_u64();
  for (auto& b : n.direct) b = dec.get_u64();
  n.indirect = dec.get_u64();
  n.dindirect = dec.get_u64();
  n.generation = dec.get_u64();
  if (!dec.ok()) return Errno::kCorrupt;
  return n;
}

Result<DiskInode> DiskInode::decode(std::span<const uint8_t> raw,
                                    const Geometry& geo) {
  RAEFS_TRY(DiskInode n, decode_raw(raw));
  RAEFS_TRY_VOID(n.validate(geo));
  return n;
}

Status DiskInode::validate(const Geometry& geo) const {
  switch (type) {
    case FileType::kNone:
    case FileType::kRegular:
    case FileType::kDirectory:
    case FileType::kSymlink:
      break;
    default:
      return Errno::kCorrupt;
  }
  if (type == FileType::kNone) {
    // Free inodes must be fully zeroed pointers.
    if (size != 0 || nlink != 0 || indirect != 0 || dindirect != 0) {
      return Errno::kCorrupt;
    }
    for (BlockNo b : direct) {
      if (b != 0) return Errno::kCorrupt;
    }
    return Status::Ok();
  }
  if (size > kMaxFileSize) return Errno::kCorrupt;
  auto check_ptr = [&](BlockNo b) {
    return b == 0 || geo.is_data_block(b);
  };
  for (BlockNo b : direct) {
    if (!check_ptr(b)) return Errno::kCorrupt;
  }
  if (!check_ptr(indirect) || !check_ptr(dindirect)) return Errno::kCorrupt;
  return Status::Ok();
}

Result<DiskInode> inode_from_table_block(std::span<const uint8_t> block,
                                         uint32_t slot, const Geometry& geo) {
  if (block.size() != kBlockSize || slot >= kInodesPerBlock) {
    return Errno::kCorrupt;
  }
  return DiskInode::decode(block.subspan(slot * kInodeSize, kInodeSize), geo);
}

void inode_into_table_block(std::span<uint8_t> block, uint32_t slot,
                            const DiskInode& inode) {
  auto bytes = inode.encode();
  std::memcpy(block.data() + slot * kInodeSize, bytes.data(), kInodeSize);
}

}  // namespace raefs
