// On-disk layout geometry shared by the base filesystem, the shadow
// filesystem and fsck. Block 0 holds the superblock, followed by the inode
// bitmap, the block bitmap (covering the whole device), the inode table,
// the journal region, and the data region.
//
// The paper (§4.1) notes kernel on-disk formats lack an explicit ABI; this
// header *is* the explicit ABI both implementations are written against.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/types.h"

namespace raefs {

inline constexpr uint32_t kInodeSize = 256;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;  // 16
inline constexpr uint32_t kPtrsPerBlock = kBlockSize / 8;             // 512
inline constexpr uint32_t kNumDirect = 12;
inline constexpr uint32_t kBitsPerBlock = kBlockSize * 8;

/// Maximum file size addressable by 12 direct + 1 indirect + 1
/// double-indirect pointers.
inline constexpr uint64_t kMaxFileBlocks =
    kNumDirect + kPtrsPerBlock +
    static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock;
inline constexpr uint64_t kMaxFileSize = kMaxFileBlocks * kBlockSize;

/// Computed positions of every on-disk region.
struct Geometry {
  uint64_t total_blocks = 0;
  uint64_t inode_count = 0;

  BlockNo inode_bitmap_start = 0;
  uint64_t inode_bitmap_blocks = 0;
  BlockNo block_bitmap_start = 0;
  uint64_t block_bitmap_blocks = 0;
  BlockNo inode_table_start = 0;
  uint64_t inode_table_blocks = 0;
  BlockNo journal_start = 0;
  uint64_t journal_blocks = 0;
  BlockNo data_start = 0;
  uint64_t data_blocks = 0;

  /// Block and intra-block slot holding inode `ino` (1-based inos).
  BlockNo inode_block(Ino ino) const {
    return inode_table_start + (ino - 1) / kInodesPerBlock;
  }
  uint32_t inode_slot(Ino ino) const {
    return static_cast<uint32_t>((ino - 1) % kInodesPerBlock);
  }

  bool ino_valid(Ino ino) const { return ino >= 1 && ino <= inode_count; }

  /// True if `b` lies in the data region.
  bool is_data_block(BlockNo b) const {
    return b >= data_start && b < total_blocks;
  }
};

/// Compute the layout for a device of `total_blocks` blocks with
/// `inode_count` inodes and a journal of `journal_blocks` blocks.
/// Returns kInval if the device is too small to hold the metadata plus at
/// least one data block.
Result<Geometry> compute_geometry(uint64_t total_blocks, uint64_t inode_count,
                                  uint64_t journal_blocks);

}  // namespace raefs
