// Directory entries: fixed 64-byte records packed into data blocks.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "format/layout.h"

namespace raefs {

inline constexpr uint32_t kDirentSize = 64;
inline constexpr uint32_t kDirentsPerBlock = kBlockSize / kDirentSize;  // 64
inline constexpr uint32_t kMaxNameLen = 54;

struct DirEntry {
  Ino ino = kInvalidIno;  // kInvalidIno = free slot
  FileType type = FileType::kNone;
  std::string name;
};

/// True if `name` is a legal directory entry name: non-empty, within
/// kMaxNameLen, and free of '/' and NUL.
bool name_valid(std::string_view name);

/// Decode slot `slot` of a directory data block. A free slot decodes to an
/// entry with ino == kInvalidIno. kCorrupt if the record is malformed
/// (bad name_len, embedded NUL/'/', type invalid).
Result<DirEntry> dirent_decode(std::span<const uint8_t> block, uint32_t slot);

/// Encode `e` into slot `slot` in place. `e.name` must be valid (or empty
/// with ino == kInvalidIno for a free slot).
void dirent_encode(std::span<uint8_t> block, uint32_t slot, const DirEntry& e);

/// Decode all used entries in a directory block, in slot order.
/// Propagates kCorrupt from any malformed slot.
Result<std::vector<DirEntry>> dirent_scan_block(std::span<const uint8_t> block);

/// Find `name` in a directory block; nullopt if absent.
/// Malformed slots yield kCorrupt.
Result<std::optional<DirEntry>> dirent_find_in_block(
    std::span<const uint8_t> block, std::string_view name);

/// Index of the first free slot in the block, or nullopt if full.
std::optional<uint32_t> dirent_free_slot(std::span<const uint8_t> block);

}  // namespace raefs
