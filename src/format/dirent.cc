#include "format/dirent.h"

#include <cstring>

#include "common/serial.h"

namespace raefs {

bool name_valid(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLen) return false;
  for (char c : name) {
    if (c == '/' || c == '\0') return false;
  }
  return true;
}

Result<DirEntry> dirent_decode(std::span<const uint8_t> block, uint32_t slot) {
  if (block.size() != kBlockSize || slot >= kDirentsPerBlock) {
    return Errno::kCorrupt;
  }
  auto rec = block.subspan(slot * kDirentSize, kDirentSize);
  Decoder dec(rec);
  DirEntry e;
  e.ino = dec.get_u64();
  uint8_t type = dec.get_u8();
  uint8_t name_len = dec.get_u8();
  if (e.ino == kInvalidIno) {
    // Free slot: everything else must be zero to avoid stale-data leaks.
    if (type != 0 || name_len != 0) return Errno::kCorrupt;
    return e;
  }
  if (type != static_cast<uint8_t>(FileType::kRegular) &&
      type != static_cast<uint8_t>(FileType::kDirectory) &&
      type != static_cast<uint8_t>(FileType::kSymlink)) {
    return Errno::kCorrupt;
  }
  e.type = static_cast<FileType>(type);
  if (name_len == 0 || name_len > kMaxNameLen) return Errno::kCorrupt;
  e.name.assign(reinterpret_cast<const char*>(rec.data()) + 10, name_len);
  if (!name_valid(e.name)) return Errno::kCorrupt;
  return e;
}

void dirent_encode(std::span<uint8_t> block, uint32_t slot,
                   const DirEntry& e) {
  uint8_t* rec = block.data() + slot * kDirentSize;
  std::memset(rec, 0, kDirentSize);
  if (e.ino == kInvalidIno) return;
  std::vector<uint8_t> tmp;
  Encoder enc(&tmp);
  enc.put_u64(e.ino);
  enc.put_u8(static_cast<uint8_t>(e.type));
  enc.put_u8(static_cast<uint8_t>(e.name.size()));
  std::memcpy(rec, tmp.data(), tmp.size());
  std::memcpy(rec + 10, e.name.data(), e.name.size());
}

Result<std::vector<DirEntry>> dirent_scan_block(
    std::span<const uint8_t> block) {
  std::vector<DirEntry> out;
  for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
    RAEFS_TRY(DirEntry e, dirent_decode(block, slot));
    if (e.ino != kInvalidIno) out.push_back(std::move(e));
  }
  return out;
}

Result<std::optional<DirEntry>> dirent_find_in_block(
    std::span<const uint8_t> block, std::string_view name) {
  for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
    RAEFS_TRY(DirEntry e, dirent_decode(block, slot));
    if (e.ino != kInvalidIno && e.name == name) {
      return std::optional<DirEntry>(std::move(e));
    }
  }
  return std::optional<DirEntry>();
}

std::optional<uint32_t> dirent_free_slot(std::span<const uint8_t> block) {
  for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
    uint64_t ino = 0;
    std::memcpy(&ino, block.data() + slot * kDirentSize, sizeof(ino));
    if (ino == 0) return slot;
  }
  return std::nullopt;
}

}  // namespace raefs
