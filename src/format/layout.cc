#include "format/layout.h"

namespace raefs {

namespace {
uint64_t div_ceil(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

Result<Geometry> compute_geometry(uint64_t total_blocks, uint64_t inode_count,
                                  uint64_t journal_blocks) {
  if (total_blocks < 8 || inode_count < 1 || journal_blocks < 4) {
    return Errno::kInval;
  }
  Geometry g;
  g.total_blocks = total_blocks;
  g.inode_count = inode_count;

  g.inode_bitmap_start = 1;
  g.inode_bitmap_blocks = div_ceil(inode_count, kBitsPerBlock);
  g.block_bitmap_start = g.inode_bitmap_start + g.inode_bitmap_blocks;
  g.block_bitmap_blocks = div_ceil(total_blocks, kBitsPerBlock);
  g.inode_table_start = g.block_bitmap_start + g.block_bitmap_blocks;
  g.inode_table_blocks = div_ceil(inode_count, kInodesPerBlock);
  g.journal_start = g.inode_table_start + g.inode_table_blocks;
  g.journal_blocks = journal_blocks;
  g.data_start = g.journal_start + g.journal_blocks;

  if (g.data_start >= total_blocks) return Errno::kInval;
  g.data_blocks = total_blocks - g.data_start;
  return g;
}

}  // namespace raefs
