#include "format/bitmap.h"

#include <bit>

namespace raefs {

std::optional<uint64_t> BitmapView::find_clear(uint64_t from) const {
  for (uint64_t i = from; i < nbits_; ++i) {
    // Skip full bytes quickly.
    if (i % 8 == 0) {
      while (i + 8 <= nbits_ && bytes_[i / 8] == 0xFF) i += 8;
      if (i >= nbits_) break;
    }
    if (!test(i)) return i;
  }
  return std::nullopt;
}

uint64_t BitmapView::count_set() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < nbits_ / 8; ++i) {
    total += static_cast<uint64_t>(std::popcount(bytes_[i]));
  }
  for (uint64_t i = (nbits_ / 8) * 8; i < nbits_; ++i) {
    total += test(i) ? 1 : 0;
  }
  return total;
}

std::optional<uint64_t> ConstBitmapView::find_clear(uint64_t from) const {
  for (uint64_t i = from; i < nbits_; ++i) {
    if (i % 8 == 0) {
      while (i + 8 <= nbits_ && bytes_[i / 8] == 0xFF) i += 8;
      if (i >= nbits_) break;
    }
    if (!test(i)) return i;
  }
  return std::nullopt;
}

uint64_t ConstBitmapView::count_set() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < nbits_ / 8; ++i) {
    total += static_cast<uint64_t>(std::popcount(bytes_[i]));
  }
  for (uint64_t i = (nbits_ / 8) * 8; i < nbits_; ++i) {
    total += test(i) ? 1 : 0;
  }
  return total;
}

}  // namespace raefs
