#include "format/superblock.h"

#include "common/checksum.h"
#include "common/serial.h"

namespace raefs {

Result<Geometry> Superblock::geometry() const {
  auto g = compute_geometry(total_blocks, inode_count, journal_blocks);
  if (!g.ok()) return Errno::kCorrupt;
  return g;
}

std::vector<uint8_t> Superblock::encode() const {
  std::vector<uint8_t> out;
  out.reserve(kBlockSize);
  Encoder enc(&out);
  enc.put_u64(magic);
  enc.put_u32(version);
  enc.put_u32(block_size);
  enc.put_u64(total_blocks);
  enc.put_u64(inode_count);
  enc.put_u64(journal_blocks);
  enc.put_u64(root_ino);
  enc.put_u32(static_cast<uint32_t>(state));
  enc.put_u64(mount_count);
  out.resize(kBlockSize - 4, 0);
  uint32_t crc = crc32c(out.data(), out.size());
  Encoder tail(&out);
  tail.put_u32(crc);
  return out;
}

Result<Superblock> Superblock::decode(std::span<const uint8_t> block) {
  if (block.size() != kBlockSize) return Errno::kCorrupt;
  uint32_t stored_crc = static_cast<uint32_t>(block[kBlockSize - 4]) |
                        (static_cast<uint32_t>(block[kBlockSize - 3]) << 8) |
                        (static_cast<uint32_t>(block[kBlockSize - 2]) << 16) |
                        (static_cast<uint32_t>(block[kBlockSize - 1]) << 24);
  if (crc32c(block.data(), kBlockSize - 4) != stored_crc) {
    return Errno::kCorrupt;
  }

  Decoder dec(block);
  Superblock sb;
  sb.magic = dec.get_u64();
  sb.version = dec.get_u32();
  sb.block_size = dec.get_u32();
  sb.total_blocks = dec.get_u64();
  sb.inode_count = dec.get_u64();
  sb.journal_blocks = dec.get_u64();
  sb.root_ino = dec.get_u64();
  sb.state = static_cast<FsState>(dec.get_u32());
  sb.mount_count = dec.get_u64();
  if (!dec.ok()) return Errno::kCorrupt;

  if (sb.magic != kSuperMagic) return Errno::kCorrupt;
  if (sb.version != kFormatVersion) return Errno::kCorrupt;
  if (sb.block_size != kBlockSize) return Errno::kCorrupt;
  if (sb.root_ino != kRootIno) return Errno::kCorrupt;
  if (sb.state != FsState::kClean && sb.state != FsState::kMounted) {
    return Errno::kCorrupt;
  }
  if (!sb.geometry().ok()) return Errno::kCorrupt;
  return sb;
}

}  // namespace raefs
