
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockdev/async_device.cc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/async_device.cc.o" "gcc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/async_device.cc.o.d"
  "/root/repo/src/blockdev/fault_device.cc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/fault_device.cc.o" "gcc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/fault_device.cc.o.d"
  "/root/repo/src/blockdev/file_device.cc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/file_device.cc.o" "gcc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/file_device.cc.o.d"
  "/root/repo/src/blockdev/mem_device.cc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/mem_device.cc.o" "gcc" "src/blockdev/CMakeFiles/raefs_blockdev.dir/mem_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
