# Empty compiler generated dependencies file for raefs_blockdev.
# This may be replaced when dependencies are built.
