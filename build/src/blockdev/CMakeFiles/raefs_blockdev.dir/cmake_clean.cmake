file(REMOVE_RECURSE
  "CMakeFiles/raefs_blockdev.dir/async_device.cc.o"
  "CMakeFiles/raefs_blockdev.dir/async_device.cc.o.d"
  "CMakeFiles/raefs_blockdev.dir/fault_device.cc.o"
  "CMakeFiles/raefs_blockdev.dir/fault_device.cc.o.d"
  "CMakeFiles/raefs_blockdev.dir/file_device.cc.o"
  "CMakeFiles/raefs_blockdev.dir/file_device.cc.o.d"
  "CMakeFiles/raefs_blockdev.dir/mem_device.cc.o"
  "CMakeFiles/raefs_blockdev.dir/mem_device.cc.o.d"
  "libraefs_blockdev.a"
  "libraefs_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
