file(REMOVE_RECURSE
  "libraefs_blockdev.a"
)
