# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("blockdev")
subdirs("format")
subdirs("journal")
subdirs("cache")
subdirs("faults")
subdirs("oplog")
subdirs("basefs")
subdirs("shadowfs")
subdirs("fsck")
subdirs("rae")
subdirs("nvp")
subdirs("vfs")
subdirs("bugstudy")
subdirs("workload")
subdirs("ufs")
