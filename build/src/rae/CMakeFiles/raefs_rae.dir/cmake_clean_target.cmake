file(REMOVE_RECURSE
  "libraefs_rae.a"
)
