file(REMOVE_RECURSE
  "CMakeFiles/raefs_rae.dir/crash_restart.cc.o"
  "CMakeFiles/raefs_rae.dir/crash_restart.cc.o.d"
  "CMakeFiles/raefs_rae.dir/executor.cc.o"
  "CMakeFiles/raefs_rae.dir/executor.cc.o.d"
  "CMakeFiles/raefs_rae.dir/supervisor.cc.o"
  "CMakeFiles/raefs_rae.dir/supervisor.cc.o.d"
  "CMakeFiles/raefs_rae.dir/wire.cc.o"
  "CMakeFiles/raefs_rae.dir/wire.cc.o.d"
  "libraefs_rae.a"
  "libraefs_rae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_rae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
