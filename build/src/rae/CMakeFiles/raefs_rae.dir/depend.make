# Empty dependencies file for raefs_rae.
# This may be replaced when dependencies are built.
