file(REMOVE_RECURSE
  "libraefs_nvp.a"
)
