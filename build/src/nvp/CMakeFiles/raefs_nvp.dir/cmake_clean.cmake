file(REMOVE_RECURSE
  "CMakeFiles/raefs_nvp.dir/nvp.cc.o"
  "CMakeFiles/raefs_nvp.dir/nvp.cc.o.d"
  "libraefs_nvp.a"
  "libraefs_nvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
