# Empty dependencies file for raefs_nvp.
# This may be replaced when dependencies are built.
