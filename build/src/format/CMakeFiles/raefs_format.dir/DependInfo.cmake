
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/bitmap.cc" "src/format/CMakeFiles/raefs_format.dir/bitmap.cc.o" "gcc" "src/format/CMakeFiles/raefs_format.dir/bitmap.cc.o.d"
  "/root/repo/src/format/dirent.cc" "src/format/CMakeFiles/raefs_format.dir/dirent.cc.o" "gcc" "src/format/CMakeFiles/raefs_format.dir/dirent.cc.o.d"
  "/root/repo/src/format/inode.cc" "src/format/CMakeFiles/raefs_format.dir/inode.cc.o" "gcc" "src/format/CMakeFiles/raefs_format.dir/inode.cc.o.d"
  "/root/repo/src/format/layout.cc" "src/format/CMakeFiles/raefs_format.dir/layout.cc.o" "gcc" "src/format/CMakeFiles/raefs_format.dir/layout.cc.o.d"
  "/root/repo/src/format/superblock.cc" "src/format/CMakeFiles/raefs_format.dir/superblock.cc.o" "gcc" "src/format/CMakeFiles/raefs_format.dir/superblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
