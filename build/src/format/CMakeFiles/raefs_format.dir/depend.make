# Empty dependencies file for raefs_format.
# This may be replaced when dependencies are built.
