file(REMOVE_RECURSE
  "CMakeFiles/raefs_format.dir/bitmap.cc.o"
  "CMakeFiles/raefs_format.dir/bitmap.cc.o.d"
  "CMakeFiles/raefs_format.dir/dirent.cc.o"
  "CMakeFiles/raefs_format.dir/dirent.cc.o.d"
  "CMakeFiles/raefs_format.dir/inode.cc.o"
  "CMakeFiles/raefs_format.dir/inode.cc.o.d"
  "CMakeFiles/raefs_format.dir/layout.cc.o"
  "CMakeFiles/raefs_format.dir/layout.cc.o.d"
  "CMakeFiles/raefs_format.dir/superblock.cc.o"
  "CMakeFiles/raefs_format.dir/superblock.cc.o.d"
  "libraefs_format.a"
  "libraefs_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
