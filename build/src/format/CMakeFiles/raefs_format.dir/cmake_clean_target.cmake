file(REMOVE_RECURSE
  "libraefs_format.a"
)
