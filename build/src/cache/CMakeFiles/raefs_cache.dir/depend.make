# Empty dependencies file for raefs_cache.
# This may be replaced when dependencies are built.
