file(REMOVE_RECURSE
  "libraefs_cache.a"
)
