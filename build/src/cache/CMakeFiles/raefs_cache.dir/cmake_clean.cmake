file(REMOVE_RECURSE
  "CMakeFiles/raefs_cache.dir/block_cache.cc.o"
  "CMakeFiles/raefs_cache.dir/block_cache.cc.o.d"
  "CMakeFiles/raefs_cache.dir/dentry_cache.cc.o"
  "CMakeFiles/raefs_cache.dir/dentry_cache.cc.o.d"
  "CMakeFiles/raefs_cache.dir/inode_cache.cc.o"
  "CMakeFiles/raefs_cache.dir/inode_cache.cc.o.d"
  "libraefs_cache.a"
  "libraefs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
