
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_cache.cc" "src/cache/CMakeFiles/raefs_cache.dir/block_cache.cc.o" "gcc" "src/cache/CMakeFiles/raefs_cache.dir/block_cache.cc.o.d"
  "/root/repo/src/cache/dentry_cache.cc" "src/cache/CMakeFiles/raefs_cache.dir/dentry_cache.cc.o" "gcc" "src/cache/CMakeFiles/raefs_cache.dir/dentry_cache.cc.o.d"
  "/root/repo/src/cache/inode_cache.cc" "src/cache/CMakeFiles/raefs_cache.dir/inode_cache.cc.o" "gcc" "src/cache/CMakeFiles/raefs_cache.dir/inode_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/raefs_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
