# Empty dependencies file for raefs_shadowfs.
# This may be replaced when dependencies are built.
