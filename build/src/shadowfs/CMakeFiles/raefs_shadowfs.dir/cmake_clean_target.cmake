file(REMOVE_RECURSE
  "libraefs_shadowfs.a"
)
