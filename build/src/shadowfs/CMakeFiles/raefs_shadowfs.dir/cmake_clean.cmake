file(REMOVE_RECURSE
  "CMakeFiles/raefs_shadowfs.dir/shadow_fs.cc.o"
  "CMakeFiles/raefs_shadowfs.dir/shadow_fs.cc.o.d"
  "CMakeFiles/raefs_shadowfs.dir/shadow_fsck.cc.o"
  "CMakeFiles/raefs_shadowfs.dir/shadow_fsck.cc.o.d"
  "CMakeFiles/raefs_shadowfs.dir/shadow_ops.cc.o"
  "CMakeFiles/raefs_shadowfs.dir/shadow_ops.cc.o.d"
  "CMakeFiles/raefs_shadowfs.dir/shadow_replay.cc.o"
  "CMakeFiles/raefs_shadowfs.dir/shadow_replay.cc.o.d"
  "libraefs_shadowfs.a"
  "libraefs_shadowfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_shadowfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
