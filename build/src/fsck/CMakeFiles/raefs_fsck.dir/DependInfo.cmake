
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsck/crafted.cc" "src/fsck/CMakeFiles/raefs_fsck.dir/crafted.cc.o" "gcc" "src/fsck/CMakeFiles/raefs_fsck.dir/crafted.cc.o.d"
  "/root/repo/src/fsck/fsck.cc" "src/fsck/CMakeFiles/raefs_fsck.dir/fsck.cc.o" "gcc" "src/fsck/CMakeFiles/raefs_fsck.dir/fsck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/raefs_format.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/raefs_journal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
