file(REMOVE_RECURSE
  "CMakeFiles/raefs_fsck.dir/crafted.cc.o"
  "CMakeFiles/raefs_fsck.dir/crafted.cc.o.d"
  "CMakeFiles/raefs_fsck.dir/fsck.cc.o"
  "CMakeFiles/raefs_fsck.dir/fsck.cc.o.d"
  "libraefs_fsck.a"
  "libraefs_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
