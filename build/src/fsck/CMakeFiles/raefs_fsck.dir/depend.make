# Empty dependencies file for raefs_fsck.
# This may be replaced when dependencies are built.
