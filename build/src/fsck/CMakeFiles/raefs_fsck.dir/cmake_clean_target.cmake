file(REMOVE_RECURSE
  "libraefs_fsck.a"
)
