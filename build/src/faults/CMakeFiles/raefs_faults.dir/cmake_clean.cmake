file(REMOVE_RECURSE
  "CMakeFiles/raefs_faults.dir/bug_library.cc.o"
  "CMakeFiles/raefs_faults.dir/bug_library.cc.o.d"
  "CMakeFiles/raefs_faults.dir/bug_registry.cc.o"
  "CMakeFiles/raefs_faults.dir/bug_registry.cc.o.d"
  "libraefs_faults.a"
  "libraefs_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
