file(REMOVE_RECURSE
  "libraefs_faults.a"
)
