# Empty compiler generated dependencies file for raefs_faults.
# This may be replaced when dependencies are built.
