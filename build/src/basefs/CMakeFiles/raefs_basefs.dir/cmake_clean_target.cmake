file(REMOVE_RECURSE
  "libraefs_basefs.a"
)
