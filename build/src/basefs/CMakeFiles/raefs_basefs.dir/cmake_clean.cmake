file(REMOVE_RECURSE
  "CMakeFiles/raefs_basefs.dir/base_fs.cc.o"
  "CMakeFiles/raefs_basefs.dir/base_fs.cc.o.d"
  "CMakeFiles/raefs_basefs.dir/base_io.cc.o"
  "CMakeFiles/raefs_basefs.dir/base_io.cc.o.d"
  "CMakeFiles/raefs_basefs.dir/base_ops.cc.o"
  "CMakeFiles/raefs_basefs.dir/base_ops.cc.o.d"
  "CMakeFiles/raefs_basefs.dir/base_txn.cc.o"
  "CMakeFiles/raefs_basefs.dir/base_txn.cc.o.d"
  "libraefs_basefs.a"
  "libraefs_basefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_basefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
