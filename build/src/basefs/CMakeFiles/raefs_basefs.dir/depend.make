# Empty dependencies file for raefs_basefs.
# This may be replaced when dependencies are built.
