file(REMOVE_RECURSE
  "libraefs_bugstudy.a"
)
