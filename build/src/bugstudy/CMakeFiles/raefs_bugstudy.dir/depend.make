# Empty dependencies file for raefs_bugstudy.
# This may be replaced when dependencies are built.
