file(REMOVE_RECURSE
  "CMakeFiles/raefs_bugstudy.dir/classify.cc.o"
  "CMakeFiles/raefs_bugstudy.dir/classify.cc.o.d"
  "CMakeFiles/raefs_bugstudy.dir/corpus.cc.o"
  "CMakeFiles/raefs_bugstudy.dir/corpus.cc.o.d"
  "libraefs_bugstudy.a"
  "libraefs_bugstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_bugstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
