file(REMOVE_RECURSE
  "CMakeFiles/raefs_oplog.dir/op.cc.o"
  "CMakeFiles/raefs_oplog.dir/op.cc.o.d"
  "CMakeFiles/raefs_oplog.dir/op_log.cc.o"
  "CMakeFiles/raefs_oplog.dir/op_log.cc.o.d"
  "CMakeFiles/raefs_oplog.dir/payload.cc.o"
  "CMakeFiles/raefs_oplog.dir/payload.cc.o.d"
  "libraefs_oplog.a"
  "libraefs_oplog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_oplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
