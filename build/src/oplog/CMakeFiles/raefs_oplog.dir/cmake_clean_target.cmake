file(REMOVE_RECURSE
  "libraefs_oplog.a"
)
