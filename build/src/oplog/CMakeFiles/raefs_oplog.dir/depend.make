# Empty dependencies file for raefs_oplog.
# This may be replaced when dependencies are built.
