file(REMOVE_RECURSE
  "libraefs_common.a"
)
