file(REMOVE_RECURSE
  "CMakeFiles/raefs_common.dir/checksum.cc.o"
  "CMakeFiles/raefs_common.dir/checksum.cc.o.d"
  "CMakeFiles/raefs_common.dir/log.cc.o"
  "CMakeFiles/raefs_common.dir/log.cc.o.d"
  "CMakeFiles/raefs_common.dir/panic.cc.o"
  "CMakeFiles/raefs_common.dir/panic.cc.o.d"
  "CMakeFiles/raefs_common.dir/serial.cc.o"
  "CMakeFiles/raefs_common.dir/serial.cc.o.d"
  "CMakeFiles/raefs_common.dir/stats.cc.o"
  "CMakeFiles/raefs_common.dir/stats.cc.o.d"
  "libraefs_common.a"
  "libraefs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
