# Empty compiler generated dependencies file for raefs_common.
# This may be replaced when dependencies are built.
