# Empty compiler generated dependencies file for raefs_workload.
# This may be replaced when dependencies are built.
