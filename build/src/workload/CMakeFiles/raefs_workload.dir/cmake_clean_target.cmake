file(REMOVE_RECURSE
  "libraefs_workload.a"
)
