file(REMOVE_RECURSE
  "CMakeFiles/raefs_workload.dir/workload.cc.o"
  "CMakeFiles/raefs_workload.dir/workload.cc.o.d"
  "libraefs_workload.a"
  "libraefs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
