file(REMOVE_RECURSE
  "libraefs_ufs.a"
)
