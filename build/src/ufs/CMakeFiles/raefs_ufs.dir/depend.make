# Empty dependencies file for raefs_ufs.
# This may be replaced when dependencies are built.
