
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ufs/shm_device.cc" "src/ufs/CMakeFiles/raefs_ufs.dir/shm_device.cc.o" "gcc" "src/ufs/CMakeFiles/raefs_ufs.dir/shm_device.cc.o.d"
  "/root/repo/src/ufs/ufs_proto.cc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_proto.cc.o" "gcc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_proto.cc.o.d"
  "/root/repo/src/ufs/ufs_server.cc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_server.cc.o" "gcc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_server.cc.o.d"
  "/root/repo/src/ufs/ufs_supervisor.cc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_supervisor.cc.o" "gcc" "src/ufs/CMakeFiles/raefs_ufs.dir/ufs_supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/basefs/CMakeFiles/raefs_basefs.dir/DependInfo.cmake"
  "/root/repo/build/src/shadowfs/CMakeFiles/raefs_shadowfs.dir/DependInfo.cmake"
  "/root/repo/build/src/oplog/CMakeFiles/raefs_oplog.dir/DependInfo.cmake"
  "/root/repo/build/src/rae/CMakeFiles/raefs_rae.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/raefs_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/raefs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/raefs_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/raefs_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
