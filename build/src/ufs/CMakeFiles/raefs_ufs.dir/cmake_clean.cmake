file(REMOVE_RECURSE
  "CMakeFiles/raefs_ufs.dir/shm_device.cc.o"
  "CMakeFiles/raefs_ufs.dir/shm_device.cc.o.d"
  "CMakeFiles/raefs_ufs.dir/ufs_proto.cc.o"
  "CMakeFiles/raefs_ufs.dir/ufs_proto.cc.o.d"
  "CMakeFiles/raefs_ufs.dir/ufs_server.cc.o"
  "CMakeFiles/raefs_ufs.dir/ufs_server.cc.o.d"
  "CMakeFiles/raefs_ufs.dir/ufs_supervisor.cc.o"
  "CMakeFiles/raefs_ufs.dir/ufs_supervisor.cc.o.d"
  "libraefs_ufs.a"
  "libraefs_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
