# Empty compiler generated dependencies file for raefs_vfs.
# This may be replaced when dependencies are built.
