file(REMOVE_RECURSE
  "libraefs_vfs.a"
)
