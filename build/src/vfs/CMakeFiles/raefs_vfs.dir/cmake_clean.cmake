file(REMOVE_RECURSE
  "CMakeFiles/raefs_vfs.dir/fd_table.cc.o"
  "CMakeFiles/raefs_vfs.dir/fd_table.cc.o.d"
  "libraefs_vfs.a"
  "libraefs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
