file(REMOVE_RECURSE
  "libraefs_journal.a"
)
