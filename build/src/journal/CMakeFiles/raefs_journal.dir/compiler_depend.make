# Empty compiler generated dependencies file for raefs_journal.
# This may be replaced when dependencies are built.
