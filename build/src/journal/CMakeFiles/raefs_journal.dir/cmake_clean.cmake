file(REMOVE_RECURSE
  "CMakeFiles/raefs_journal.dir/journal.cc.o"
  "CMakeFiles/raefs_journal.dir/journal.cc.o.d"
  "libraefs_journal.a"
  "libraefs_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
