# Empty compiler generated dependencies file for crafted_image_attack.
# This may be replaced when dependencies are built.
