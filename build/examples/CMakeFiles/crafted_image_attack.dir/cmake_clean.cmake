file(REMOVE_RECURSE
  "CMakeFiles/crafted_image_attack.dir/crafted_image_attack.cpp.o"
  "CMakeFiles/crafted_image_attack.dir/crafted_image_attack.cpp.o.d"
  "crafted_image_attack"
  "crafted_image_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafted_image_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
