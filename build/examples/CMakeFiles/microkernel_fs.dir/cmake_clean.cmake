file(REMOVE_RECURSE
  "CMakeFiles/microkernel_fs.dir/microkernel_fs.cpp.o"
  "CMakeFiles/microkernel_fs.dir/microkernel_fs.cpp.o.d"
  "microkernel_fs"
  "microkernel_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernel_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
