
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/microkernel_fs.cpp" "examples/CMakeFiles/microkernel_fs.dir/microkernel_fs.cpp.o" "gcc" "examples/CMakeFiles/microkernel_fs.dir/microkernel_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/raefs_format.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/raefs_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/raefs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/raefs_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/oplog/CMakeFiles/raefs_oplog.dir/DependInfo.cmake"
  "/root/repo/build/src/basefs/CMakeFiles/raefs_basefs.dir/DependInfo.cmake"
  "/root/repo/build/src/shadowfs/CMakeFiles/raefs_shadowfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fsck/CMakeFiles/raefs_fsck.dir/DependInfo.cmake"
  "/root/repo/build/src/rae/CMakeFiles/raefs_rae.dir/DependInfo.cmake"
  "/root/repo/build/src/nvp/CMakeFiles/raefs_nvp.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/raefs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/bugstudy/CMakeFiles/raefs_bugstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/raefs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/raefs_ufs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
