file(REMOVE_RECURSE
  "CMakeFiles/highavail_server.dir/highavail_server.cpp.o"
  "CMakeFiles/highavail_server.dir/highavail_server.cpp.o.d"
  "highavail_server"
  "highavail_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highavail_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
