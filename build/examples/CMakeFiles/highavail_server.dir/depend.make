# Empty dependencies file for highavail_server.
# This may be replaced when dependencies are built.
