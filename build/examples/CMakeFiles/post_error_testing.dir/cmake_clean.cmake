file(REMOVE_RECURSE
  "CMakeFiles/post_error_testing.dir/post_error_testing.cpp.o"
  "CMakeFiles/post_error_testing.dir/post_error_testing.cpp.o.d"
  "post_error_testing"
  "post_error_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_error_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
