# Empty dependencies file for post_error_testing.
# This may be replaced when dependencies are built.
