# Empty dependencies file for raefs_cli.
# This may be replaced when dependencies are built.
