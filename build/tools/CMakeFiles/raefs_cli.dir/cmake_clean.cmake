file(REMOVE_RECURSE
  "CMakeFiles/raefs_cli.dir/raefs_cli.cc.o"
  "CMakeFiles/raefs_cli.dir/raefs_cli.cc.o.d"
  "raefs"
  "raefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
