file(REMOVE_RECURSE
  "CMakeFiles/bench_common_case.dir/bench_common_case.cc.o"
  "CMakeFiles/bench_common_case.dir/bench_common_case.cc.o.d"
  "bench_common_case"
  "bench_common_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
