# Empty compiler generated dependencies file for bench_common_case.
# This may be replaced when dependencies are built.
