# Empty compiler generated dependencies file for bench_nvp.
# This may be replaced when dependencies are built.
