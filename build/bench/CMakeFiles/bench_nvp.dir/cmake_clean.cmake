file(REMOVE_RECURSE
  "CMakeFiles/bench_nvp.dir/bench_nvp.cc.o"
  "CMakeFiles/bench_nvp.dir/bench_nvp.cc.o.d"
  "bench_nvp"
  "bench_nvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
