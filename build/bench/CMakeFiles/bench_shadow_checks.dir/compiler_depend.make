# Empty compiler generated dependencies file for bench_shadow_checks.
# This may be replaced when dependencies are built.
