file(REMOVE_RECURSE
  "CMakeFiles/bench_shadow_checks.dir/bench_shadow_checks.cc.o"
  "CMakeFiles/bench_shadow_checks.dir/bench_shadow_checks.cc.o.d"
  "bench_shadow_checks"
  "bench_shadow_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shadow_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
