file(REMOVE_RECURSE
  "CMakeFiles/bench_recording_overhead.dir/bench_recording_overhead.cc.o"
  "CMakeFiles/bench_recording_overhead.dir/bench_recording_overhead.cc.o.d"
  "bench_recording_overhead"
  "bench_recording_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recording_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
