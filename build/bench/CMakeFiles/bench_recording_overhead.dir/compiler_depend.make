# Empty compiler generated dependencies file for bench_recording_overhead.
# This may be replaced when dependencies are built.
