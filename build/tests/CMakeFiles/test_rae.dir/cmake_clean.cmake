file(REMOVE_RECURSE
  "CMakeFiles/test_rae.dir/test_rae.cc.o"
  "CMakeFiles/test_rae.dir/test_rae.cc.o.d"
  "test_rae"
  "test_rae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
