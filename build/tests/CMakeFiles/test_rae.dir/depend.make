# Empty dependencies file for test_rae.
# This may be replaced when dependencies are built.
