file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_images.dir/test_fuzz_images.cc.o"
  "CMakeFiles/test_fuzz_images.dir/test_fuzz_images.cc.o.d"
  "test_fuzz_images"
  "test_fuzz_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
