# Empty dependencies file for test_shadow_fsck.
# This may be replaced when dependencies are built.
