file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_fsck.dir/test_shadow_fsck.cc.o"
  "CMakeFiles/test_shadow_fsck.dir/test_shadow_fsck.cc.o.d"
  "test_shadow_fsck"
  "test_shadow_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
