# Empty dependencies file for test_policy_divergence.
# This may be replaced when dependencies are built.
