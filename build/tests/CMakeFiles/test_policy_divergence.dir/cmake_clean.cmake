file(REMOVE_RECURSE
  "CMakeFiles/test_policy_divergence.dir/test_policy_divergence.cc.o"
  "CMakeFiles/test_policy_divergence.dir/test_policy_divergence.cc.o.d"
  "test_policy_divergence"
  "test_policy_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
