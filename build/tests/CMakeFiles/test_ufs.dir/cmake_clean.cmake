file(REMOVE_RECURSE
  "CMakeFiles/test_ufs.dir/test_ufs.cc.o"
  "CMakeFiles/test_ufs.dir/test_ufs.cc.o.d"
  "test_ufs"
  "test_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
