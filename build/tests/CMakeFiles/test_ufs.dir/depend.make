# Empty dependencies file for test_ufs.
# This may be replaced when dependencies are built.
