file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_standalone.dir/test_shadow_standalone.cc.o"
  "CMakeFiles/test_shadow_standalone.dir/test_shadow_standalone.cc.o.d"
  "test_shadow_standalone"
  "test_shadow_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
