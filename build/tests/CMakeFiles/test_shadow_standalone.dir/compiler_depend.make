# Empty compiler generated dependencies file for test_shadow_standalone.
# This may be replaced when dependencies are built.
