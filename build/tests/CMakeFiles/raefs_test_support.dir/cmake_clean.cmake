file(REMOVE_RECURSE
  "CMakeFiles/raefs_test_support.dir/support/model_fs.cc.o"
  "CMakeFiles/raefs_test_support.dir/support/model_fs.cc.o.d"
  "libraefs_test_support.a"
  "libraefs_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raefs_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
