
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/model_fs.cc" "tests/CMakeFiles/raefs_test_support.dir/support/model_fs.cc.o" "gcc" "tests/CMakeFiles/raefs_test_support.dir/support/model_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/basefs/CMakeFiles/raefs_basefs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raefs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/raefs_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/raefs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/raefs_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/oplog/CMakeFiles/raefs_oplog.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/raefs_format.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/raefs_blockdev.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
