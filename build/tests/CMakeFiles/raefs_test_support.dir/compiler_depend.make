# Empty compiler generated dependencies file for raefs_test_support.
# This may be replaced when dependencies are built.
