file(REMOVE_RECURSE
  "libraefs_test_support.a"
)
