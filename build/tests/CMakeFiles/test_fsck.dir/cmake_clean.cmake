file(REMOVE_RECURSE
  "CMakeFiles/test_fsck.dir/test_fsck.cc.o"
  "CMakeFiles/test_fsck.dir/test_fsck.cc.o.d"
  "test_fsck"
  "test_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
