# Empty dependencies file for test_scrub_retry.
# This may be replaced when dependencies are built.
