file(REMOVE_RECURSE
  "CMakeFiles/test_scrub_retry.dir/test_scrub_retry.cc.o"
  "CMakeFiles/test_scrub_retry.dir/test_scrub_retry.cc.o.d"
  "test_scrub_retry"
  "test_scrub_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrub_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
