# Empty compiler generated dependencies file for test_basefs.
# This may be replaced when dependencies are built.
