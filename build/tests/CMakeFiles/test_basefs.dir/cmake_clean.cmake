file(REMOVE_RECURSE
  "CMakeFiles/test_basefs.dir/test_basefs.cc.o"
  "CMakeFiles/test_basefs.dir/test_basefs.cc.o.d"
  "test_basefs"
  "test_basefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
