file(REMOVE_RECURSE
  "CMakeFiles/test_bugstudy.dir/test_bugstudy.cc.o"
  "CMakeFiles/test_bugstudy.dir/test_bugstudy.cc.o.d"
  "test_bugstudy"
  "test_bugstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bugstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
