file(REMOVE_RECURSE
  "CMakeFiles/test_shadowfs.dir/test_shadowfs.cc.o"
  "CMakeFiles/test_shadowfs.dir/test_shadowfs.cc.o.d"
  "test_shadowfs"
  "test_shadowfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadowfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
