# Empty dependencies file for test_shadowfs.
# This may be replaced when dependencies are built.
