file(REMOVE_RECURSE
  "CMakeFiles/test_basefs_persistence.dir/test_basefs_persistence.cc.o"
  "CMakeFiles/test_basefs_persistence.dir/test_basefs_persistence.cc.o.d"
  "test_basefs_persistence"
  "test_basefs_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basefs_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
