# Empty dependencies file for test_basefs_persistence.
# This may be replaced when dependencies are built.
