file(REMOVE_RECURSE
  "CMakeFiles/test_basefs_edge.dir/test_basefs_edge.cc.o"
  "CMakeFiles/test_basefs_edge.dir/test_basefs_edge.cc.o.d"
  "test_basefs_edge"
  "test_basefs_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basefs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
