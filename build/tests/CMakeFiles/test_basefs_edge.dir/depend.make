# Empty dependencies file for test_basefs_edge.
# This may be replaced when dependencies are built.
