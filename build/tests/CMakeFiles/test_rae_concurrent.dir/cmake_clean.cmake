file(REMOVE_RECURSE
  "CMakeFiles/test_rae_concurrent.dir/test_rae_concurrent.cc.o"
  "CMakeFiles/test_rae_concurrent.dir/test_rae_concurrent.cc.o.d"
  "test_rae_concurrent"
  "test_rae_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rae_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
