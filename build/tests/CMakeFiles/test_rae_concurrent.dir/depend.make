# Empty dependencies file for test_rae_concurrent.
# This may be replaced when dependencies are built.
