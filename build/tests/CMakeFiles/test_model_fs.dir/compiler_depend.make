# Empty compiler generated dependencies file for test_model_fs.
# This may be replaced when dependencies are built.
