file(REMOVE_RECURSE
  "CMakeFiles/test_model_fs.dir/test_model_fs.cc.o"
  "CMakeFiles/test_model_fs.dir/test_model_fs.cc.o.d"
  "test_model_fs"
  "test_model_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
