# Empty dependencies file for test_blockdev.
# This may be replaced when dependencies are built.
