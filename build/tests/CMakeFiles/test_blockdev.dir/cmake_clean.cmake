file(REMOVE_RECURSE
  "CMakeFiles/test_blockdev.dir/test_blockdev.cc.o"
  "CMakeFiles/test_blockdev.dir/test_blockdev.cc.o.d"
  "test_blockdev"
  "test_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
