file(REMOVE_RECURSE
  "CMakeFiles/test_oplog.dir/test_oplog.cc.o"
  "CMakeFiles/test_oplog.dir/test_oplog.cc.o.d"
  "test_oplog"
  "test_oplog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
