// Quickstart: mount a RAE-supervised filesystem, use it through the VFS,
// trigger a deterministic kernel-style bug, and watch the application
// sail straight through the recovery.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "blockdev/mem_device.h"
#include "faults/bug_library.h"
#include "rae/supervisor.h"
#include "vfs/vfs.h"

using namespace raefs;

int main() {
  // 1. A 128 MiB in-memory device with NVMe-ish latency, simulated time.
  auto clock = make_clock();
  MemBlockDevice device(32768, clock, LatencyModel{});

  // 2. mkfs + mount under the RAE supervisor. The BugRegistry plays the
  //    role of the base filesystem's latent bugs: here, unlinking a
  //    maximum-length name hits a BUG() -- a classic input-sanity bug.
  MkfsOptions mkfs;
  mkfs.total_blocks = 32768;
  mkfs.inode_count = 4096;
  if (!BaseFs::mkfs(&device, mkfs).ok()) {
    std::fprintf(stderr, "mkfs failed\n");
    return 1;
  }
  BugRegistry bugs;
  bugs.install(bugs::make(bugs::kUnlinkLongNamePanic));

  auto sup = RaeSupervisor::start(&device, RaeOptions{}, clock, &bugs);
  if (!sup.ok()) {
    std::fprintf(stderr, "mount failed\n");
    return 1;
  }
  Vfs<RaeSupervisor> vfs(sup.value().get());

  // 3. Ordinary application work through the POSIX-style VFS.
  std::printf("-- normal operation --\n");
  (void)vfs.mkdir("/projects");
  auto fd = vfs.open("/projects/notes.txt", kRdWr | kCreate, 0644);
  std::string text = "shadow filesystems: robust alternative execution\n";
  (void)vfs.write(fd.value(), std::span<const uint8_t>(
                                  reinterpret_cast<const uint8_t*>(text.data()),
                                  text.size()));
  (void)vfs.fsync(fd.value());
  std::printf("wrote %zu bytes to /projects/notes.txt (fd %lld)\n",
              text.size(), static_cast<long long>(fd.value()));

  // 4. Trigger the bug: a file whose name is exactly 54 characters.
  std::string trigger = "/projects/" + std::string(54, 'x');
  auto tfd = vfs.open(trigger, kWrOnly | kCreate);
  (void)vfs.close(tfd.value());
  std::printf("\n-- unlinking the trigger file (the base will BUG()) --\n");
  Status st = vfs.unlink(trigger);
  std::printf("unlink returned: %s  <-- the application never saw the bug\n",
              to_string(st.error()));

  // 5. What actually happened underneath.
  const auto& stats = sup.value()->stats();
  std::printf("\n-- what RAE did --\n");
  std::printf("panics trapped:     %llu\n",
              static_cast<unsigned long long>(stats.panics_trapped));
  std::printf("recoveries:         %llu\n",
              static_cast<unsigned long long>(stats.recoveries));
  std::printf("ops replayed:       %llu (by the shadow, constrained mode)\n",
              static_cast<unsigned long long>(stats.ops_replayed_total));
  std::printf("recovery downtime:  %s (simulated)\n",
              format_nanos(stats.total_downtime).c_str());

  // 6. The old descriptor still works across the contained reboot.
  (void)vfs.seek(fd.value(), 0);
  auto back = vfs.read(fd.value(), 4096);
  std::printf("\n-- descriptor survived recovery --\n");
  std::printf("read back %zu bytes: %.*s",
              back.value().size(), static_cast<int>(back.value().size()),
              reinterpret_cast<const char*>(back.value().data()));

  (void)vfs.close(fd.value());
  (void)sup.value()->shutdown();
  std::printf("\nclean shutdown. done.\n");
  return 0;
}
