// The crafted-disk-image attack from the paper's motivation (§2.1): an
// image that bypasses FSCK and crashes the kernel on first touch.
//
// This example walks the full story:
//   1. a valid image is corrupted by an "attacker" who knows the format;
//   2. the weak FSCK (e2fsck stand-in) declares it fine;
//   3. a bare base filesystem mounts it and oopses on lookup;
//   4. under RAE the same lookup is trapped, the shadow's extensive
//      checks refuse the image, and the filesystem is taken offline
//      cleanly -- no machine crash, no recovery loop;
//   5. the strict (shadow-grade) FSCK explains exactly what is wrong.
#include <cstdio>

#include "basefs/base_fs.h"
#include "blockdev/mem_device.h"
#include "fsck/crafted.h"
#include "fsck/fsck.h"
#include "rae/supervisor.h"

using namespace raefs;

int main() {
  auto clock = make_clock();
  MemBlockDevice device(8192, clock);
  MkfsOptions mkfs;
  mkfs.total_blocks = 8192;
  mkfs.inode_count = 1024;
  if (!BaseFs::mkfs(&device, mkfs).ok()) return 1;

  std::printf("== step 1: attacker crafts the image ==\n");
  if (!craft_image(&device, CraftKind::kBadDirentNameLen).ok()) return 1;
  std::printf("injected: directory entry with name_len=200 (max is %u)\n\n",
              kMaxNameLen);

  std::printf("== step 2: weak fsck (what the victim runs) ==\n");
  auto weak = fsck(&device, FsckLevel::kWeak);
  std::printf("weak fsck verdict: %s\n\n",
              weak.value().consistent() ? "IMAGE OK  <-- fooled"
                                        : "corrupt");

  std::printf("== step 3: bare base filesystem touches the image ==\n");
  {
    auto fs = BaseFs::mount(&device, BaseFsOptions{}, clock);
    try {
      (void)fs.value()->lookup("/anything");
      std::printf("lookup succeeded?!\n");
    } catch (const FsPanicError& e) {
      std::printf("KERNEL OOPS: %s\n", e.what());
      std::printf("without RAE this is a machine crash + reboot + fsck\n\n");
    }
  }

  std::printf("== step 4: the same image under RAE ==\n");
  auto sup = RaeSupervisor::start(&device, RaeOptions{}, clock, nullptr);
  auto looked = sup.value()->lookup("/anything");
  std::printf("lookup returned: %s (no crash)\n",
              to_string(looked.ok() ? Errno::kOk : looked.error()));
  std::printf("filesystem offline: %s\n",
              sup.value()->offline() ? "yes -- taken down cleanly" : "no");
  std::printf("reason: %s\n", sup.value()->offline_reason().c_str());
  std::printf("failed recoveries: %llu (exactly one; no crash loop)\n\n",
              static_cast<unsigned long long>(
                  sup.value()->stats().failed_recoveries));

  std::printf("== step 5: strict (shadow-grade) fsck explains it ==\n");
  auto strict = fsck(&device, FsckLevel::kStrict);
  std::printf("%s\n", strict.value().summary().c_str());
  return 0;
}
