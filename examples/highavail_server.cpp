// A buggy "file server" that stays up: runs a fileserver workload against
// a base filesystem riddled with injected bugs -- the full deterministic
// crash suite plus transient panics, WARNs and silent corruption -- under
// the RAE supervisor, and prints a service report. The identical run on
// the crash-restart baseline shows what operators live with today.
#include <cstdio>

#include "blockdev/mem_device.h"
#include "faults/bug_library.h"
#include "rae/crash_restart.h"
#include "rae/supervisor.h"
#include "workload/workload.h"

using namespace raefs;

namespace {

void install_all_bugs(BugRegistry* bugs) {
  bugs::install_deterministic_crash_suite(bugs);
  bugs->install(bugs::make(bugs::kTransientPanic, 0.002));
  bugs->install(bugs::make(bugs::kTransientWarn, 0.002));
  bugs->install(bugs::make(bugs::kTruncateUnalignedWarn));
  bugs->install(bugs::make(bugs::kSymlinkBitmapCorrupt));
}

WorkloadOptions server_workload(SimClockPtr clock) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kFileserver;
  opts.seed = 777;
  opts.nops = 4000;
  opts.initial_files = 32;
  opts.max_io_bytes = 8 * 1024;
  opts.sync_every = 200;
  opts.think_ns_per_op = 500 * kMicro;  // request handling between IOs
  opts.clock = std::move(clock);
  opts.max_io_failures = 1u << 30;
  return opts;
}

MkfsOptions image() {
  MkfsOptions mkfs;
  mkfs.total_blocks = 65536;
  mkfs.inode_count = 8192;
  return mkfs;
}

}  // namespace

int main() {
  std::printf("serving 4000 requests against a base filesystem carrying:\n");
  std::printf("  5 deterministic crash bugs, 2 transient bug classes,\n");
  std::printf("  1 WARN bug, 1 silent-corruption bug\n\n");

  // ---- RAE ----------------------------------------------------------------
  {
    auto clock = make_clock();
    MemBlockDevice device(65536, clock, LatencyModel{});
    if (!BaseFs::mkfs(&device, image()).ok()) return 1;
    BugRegistry bugs(2026);
    install_all_bugs(&bugs);
    RaeOptions opts;
    opts.warn_policy = RaeOptions::WarnPolicy::kRecoverAfterN;
    opts.warn_threshold = 4;
    auto sup = RaeSupervisor::start(&device, opts, clock, &bugs);

    Nanos t0 = clock->now();
    auto result = run_workload(*sup.value(), server_workload(clock));
    Nanos elapsed = clock->now() - t0;
    const auto& stats = sup.value()->stats();

    std::printf("=== RAE-supervised server ===\n");
    std::printf("requests served:      %llu (%llu app-visible IO failures)\n",
                static_cast<unsigned long long>(result.ops_issued),
                static_cast<unsigned long long>(result.io_failures));
    std::printf("bugs fired:           %llu panics, %llu WARN recoveries\n",
                static_cast<unsigned long long>(stats.panics_trapped),
                static_cast<unsigned long long>(stats.warn_recoveries));
    std::printf("recoveries:           %llu (%llu ops replayed by shadow)\n",
                static_cast<unsigned long long>(stats.recoveries),
                static_cast<unsigned long long>(stats.ops_replayed_total));
    std::printf("recovery time:        %s\n",
                stats.recovery_time.summary().c_str());
    std::printf("availability:         %.4f%% (downtime %s of %s)\n\n",
                100.0 * (1.0 - static_cast<double>(stats.total_downtime) /
                                   static_cast<double>(elapsed)),
                format_nanos(stats.total_downtime).c_str(),
                format_nanos(elapsed).c_str());
    (void)sup.value()->shutdown();
  }

  // ---- crash-restart baseline ----------------------------------------------
  {
    auto clock = make_clock();
    MemBlockDevice device(65536, clock, LatencyModel{});
    if (!BaseFs::mkfs(&device, image()).ok()) return 1;
    BugRegistry bugs(2026);
    install_all_bugs(&bugs);
    auto sup = CrashRestartSupervisor::start(&device, {}, clock, &bugs);

    Nanos t0 = clock->now();
    auto result = run_workload(*sup.value(), server_workload(clock));
    Nanos elapsed = clock->now() - t0;
    const auto& stats = sup.value()->stats();

    std::printf("=== crash-restart baseline (today's status quo) ===\n");
    std::printf("requests served:      %llu (%llu app-visible IO failures)\n",
                static_cast<unsigned long long>(result.ops_issued),
                static_cast<unsigned long long>(stats.app_visible_failures));
    std::printf("machine crashes:      %llu\n",
                static_cast<unsigned long long>(stats.crashes));
    std::printf("acked updates LOST:   %llu\n",
                static_cast<unsigned long long>(stats.lost_acked_ops));
    std::printf("availability:         %.4f%% (downtime %s of %s)\n",
                100.0 * (1.0 - static_cast<double>(stats.total_downtime) /
                                   static_cast<double>(elapsed)),
                format_nanos(stats.total_downtime).c_str(),
                format_nanos(elapsed).c_str());
    (void)sup.value()->shutdown();
  }
  return 0;
}
