// The microkernel filesystem path (paper §4.2): the base filesystem runs
// as a separate OS process over shared-memory storage. A triggered bug
// kills that process for real -- and the application never notices,
// because the supervisor reaps the corpse, recovers via the shadow, and
// forks a fresh server.
//
//   $ ./microkernel_fs
#include <cstdio>
#include <string>

#include "faults/bug_library.h"
#include "ufs/ufs_supervisor.h"
#include "vfs/vfs.h"

using namespace raefs;

int main() {
  auto clock = make_clock();
  ShmBlockDevice device(16384);  // shared-memory "disk": outlives servers
  MkfsOptions mkfs;
  mkfs.total_blocks = 16384;
  mkfs.inode_count = 2048;
  if (!BaseFs::mkfs(&device, mkfs).ok()) return 1;

  // Arm the bug BEFORE the first server forks (it inherits the registry).
  BugRegistry bugs;
  bugs.install(bugs::make(bugs::kUnlinkLongNamePanic));

  auto sup = UfsSupervisor::start(&device, UfsOptions{}, clock, &bugs);
  if (!sup.ok()) return 1;
  Vfs<UfsSupervisor> vfs(sup.value().get());

  std::printf("-- filesystem server running as its own process --\n");
  (void)vfs.mkdir("/mail");
  auto fd = vfs.open("/mail/inbox", kRdWr | kCreate, 0644);
  std::string msg = "microkernels: fault isolation for free\n";
  (void)vfs.write(fd.value(),
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(msg.data()),
                      msg.size()));
  std::printf("wrote %zu bytes over RPC\n\n", msg.size());

  std::string trigger = "/mail/" + std::string(54, 'x');
  auto tfd = vfs.open(trigger, kWrOnly | kCreate);
  (void)vfs.close(tfd.value());

  std::printf("-- unlinking the trigger: the SERVER PROCESS will die --\n");
  Status st = vfs.unlink(trigger);
  std::printf("unlink returned: %s\n\n", to_string(st.error()));

  const auto& stats = sup.value()->stats();
  std::printf("server crashes observed:  %llu (a real process exit)\n",
              static_cast<unsigned long long>(stats.server_crashes));
  std::printf("servers forked:           %llu (initial + respawn)\n",
              static_cast<unsigned long long>(stats.respawns));
  std::printf("ops replayed by shadow:   %llu\n",
              static_cast<unsigned long long>(stats.ops_replayed_total));
  std::printf("recovery time:            %s (simulated)\n\n",
              format_nanos(stats.recovery_time.max()).c_str());

  // The descriptor opened against the DEAD server still works: fds are
  // supervisor-owned essential state, and the store survived in shm.
  (void)vfs.seek(fd.value(), 0);
  auto back = vfs.read(fd.value(), 4096);
  std::printf("-- data served by the fresh process --\n%.*s",
              static_cast<int>(back.value().size()),
              reinterpret_cast<const char*>(back.value().data()));

  (void)sup.value()->shutdown();
  std::printf("\nclean shutdown. done.\n");
  return 0;
}
