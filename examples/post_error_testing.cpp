// The shadow as a post-error TESTING tool (paper §4.3): because the
// operation sequence and its outcomes are recorded, replaying them on the
// shadow and cross-checking is an effective way to pinpoint bugs in the
// base -- "especially for inputs often missed by testing frameworks."
//
// This example records a real run of the base filesystem, then simulates
// a wrong-result bug by tampering with one recorded outcome (as a buggy
// base would have produced), and lets the shadow's constrained-mode
// cross-check name the exact operation that went wrong.
#include <cstdio>

#include "blockdev/mem_device.h"
#include "basefs/base_fs.h"
#include "shadowfs/shadow_replay.h"
#include "tests/support/fixtures.h"

using namespace raefs;

namespace {

/// A minimal recorder: executes ops on the base and logs request+outcome
/// exactly like the RAE supervisor does.
struct Recorder {
  BaseFs& fs;
  std::vector<OpRecord> log;
  Seq next_seq = 1;

  Ino create(const std::string& path) {
    OpRecord rec;
    rec.seq = next_seq++;
    rec.req.kind = OpKind::kCreate;
    rec.req.path = path;
    rec.req.mode = 0644;
    auto r = fs.create(path, 0644);
    rec.completed = true;
    rec.out.err = r.ok() ? Errno::kOk : r.error();
    if (r.ok()) rec.out.assigned_ino = r.value();
    log.push_back(rec);
    return r.ok() ? r.value() : kInvalidIno;
  }

  void write(Ino ino, FileOff off, const std::vector<uint8_t>& data) {
    OpRecord rec;
    rec.seq = next_seq++;
    rec.req.kind = OpKind::kWrite;
    rec.req.ino = ino;
    rec.req.offset = off;
    rec.req.data = data;
    auto r = fs.write(ino, 0, off, data);
    rec.completed = true;
    rec.out.err = r.ok() ? Errno::kOk : r.error();
    if (r.ok()) rec.out.result_len = r.value();
    log.push_back(rec);
  }

  void unlink(const std::string& path) {
    OpRecord rec;
    rec.seq = next_seq++;
    rec.req.kind = OpKind::kUnlink;
    rec.req.path = path;
    rec.out.err = fs.unlink(path).error();
    rec.completed = true;
    log.push_back(rec);
  }
};

}  // namespace

int main() {
  auto clock = make_clock();
  MemBlockDevice device(8192, clock);
  MkfsOptions mkfs;
  mkfs.total_blocks = 8192;
  mkfs.inode_count = 1024;
  if (!BaseFs::mkfs(&device, mkfs).ok()) return 1;

  // Snapshot the pristine image: the shadow will replay on top of it.
  auto pristine = device.clone_full();

  std::printf("== recording a run of the base filesystem ==\n");
  std::vector<OpRecord> log;
  {
    auto fs = BaseFs::mount(&device, BaseFsOptions{}, clock);
    Recorder recorder{*fs.value(), {}, 1};
    Ino a = recorder.create("/alpha");
    recorder.write(a, 0, testing_support::pattern_bytes(3000, 1));
    Ino b = recorder.create("/beta");
    recorder.write(b, 0, testing_support::pattern_bytes(1500, 2));
    recorder.unlink("/alpha");
    Ino c = recorder.create("/gamma");
    recorder.write(c, 4096, testing_support::pattern_bytes(2000, 3));
    log = std::move(recorder.log);
    std::printf("recorded %zu operations\n\n", log.size());
    (void)fs.value()->unmount();
  }

  std::printf("== replaying on the shadow: healthy base ==\n");
  {
    auto image = pristine->clone_full();
    auto outcome = shadow_execute(image.get(), log, ShadowConfig{});
    std::printf("shadow verdict: %s, %zu discrepancies\n\n",
                outcome.ok ? "ok" : outcome.failure.c_str(),
                outcome.discrepancies.size());
  }

  std::printf("== simulating a wrong-result bug in the base ==\n");
  // A buggy base reported a short write of 900 bytes for op 4 while the
  // application's data was 1500 bytes -- the class of silent wrong-result
  // bug differential testing exists to catch.
  auto tampered = log;
  tampered[3].out.result_len = 900;
  std::printf("tampered: op %llu (%s) now claims result_len=900\n\n",
              static_cast<unsigned long long>(tampered[3].seq),
              tampered[3].req.describe().c_str());

  {
    auto image = pristine->clone_full();
    auto outcome = shadow_execute(image.get(), tampered, ShadowConfig{});
    std::printf("== shadow cross-check report ==\n");
    std::printf("verdict: %s\n", outcome.ok ? "completed" : "refused");
    for (const auto& d : outcome.discrepancies) {
      std::printf("DISCREPANCY at op %llu:\n  %s\n",
                  static_cast<unsigned long long>(d.seq),
                  d.description.c_str());
    }
    std::printf(
        "\nEither the base mis-executed (a bug to report, with the exact\n"
        "triggering sequence already in hand) or the shadow is missing a\n"
        "condition (a gap to fix). Both improve reliability -- §4.3.\n");
  }
  return 0;
}
